//! The assembled distributed engine: cache → selection → replicated
//! scatter-gather, with failure masking.
//!
//! This is the component stack of the paper's Figure 3 in one process: a
//! coordinator consults a result cache, optionally narrows the partition
//! set with collection selection, dispatches to a live replica of each
//! chosen partition, merges, and falls back to *stale cached results* when
//! a whole replica group is down ("upon query processor failures, the
//! system returns cached results").
//!
//! # Concurrency
//!
//! The engine is split into an immutable shared core and interior-mutable
//! accounting, so every serving method takes `&self` and the whole type
//! is `Send + Sync`:
//!
//! * the [`DocBroker`] owns an `Arc`-backed clone of the partitioned
//!   index and is itself shareable;
//! * the result cache sits behind a [`ShardedCache`] (policy state under
//!   per-shard mutexes);
//! * replica groups are per-partition mutexes (their round-robin cursors
//!   mutate on dispatch);
//! * counters are atomics, snapshot by [`DistributedEngine::stats`].
//!
//! Many client threads can therefore drive one `Arc<DistributedEngine>`,
//! and/or a single client can enable [`DistributedEngine::with_parallelism`]
//! to evaluate the partitions of *each* query concurrently. The parallel
//! scatter path is bit-for-bit identical to the sequential one (see
//! [`crate::broker`]).
//!
//! # Fault injection
//!
//! Replica liveness can be driven by a [`FaultSchedule`]
//! ([`DistributedEngine::with_faults`]): [`DistributedEngine::advance_to`]
//! applies the schedule's outage state at a simulated instant, and at
//! dispatch time the engine checks whether the chosen replica dies
//! *mid-query*, in which case it hedges once on another live replica
//! (subject to the optional per-query deadline,
//! [`DistributedEngine::with_deadline`]) before dropping the partition as
//! degraded. Selection, the availability check, and dispatch happen in
//! **one** pass under a single lock per replica group, so a group dying
//! concurrently can never be counted as served.

use crate::broker::{BatchQuery, BrokeredResponse, DocBroker, GlobalHit};
use crate::cache::{ResultCache, ShardedCache};
use crate::faults::FaultSchedule;
use crate::replica::ReplicaGroup;
use dwr_obs::{Event, NoopRecorder, Outcome as ObsOutcome, Recorder};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::select::CollectionSelector;
use dwr_sim::SimTime;
use dwr_text::search::EvalStrategy;
use dwr_text::TermId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Lock a mutex, recovering the guard when a previous holder panicked.
/// Engine state under these locks (replica cursors, liveness bits) is
/// valid after any interrupted operation, so one panicking client must
/// not wedge every other thread.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Fresh results straight from the cache.
    CacheHit,
    /// Evaluated on the full chosen partition set.
    Full,
    /// Evaluated with some partitions unavailable (degraded results).
    Degraded {
        /// Number of unavailable partitions skipped.
        missing: usize,
    },
    /// Backend entirely unavailable; served stale results from the cache.
    StaleFromCache,
    /// Backend unavailable and the cache had nothing.
    Failed,
    /// Rejected by admission control before reaching any backend: live
    /// capacity existed but policy (load shedding, an exhausted WAN
    /// retry/deadline budget) refused the query. Produced only by the
    /// site tier ([`crate::multisite::MultiSiteEngine`]); a single-site
    /// `DistributedEngine` never sheds.
    Shed,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Answered from cache (fresh).
    pub cache_hits: u64,
    /// Fully evaluated.
    pub full: u64,
    /// Evaluated with missing partitions.
    pub degraded: u64,
    /// Served stale from cache during an outage.
    pub stale: u64,
    /// Unanswerable.
    pub failed: u64,
    /// Hedged retries dispatched after a replica died mid-query.
    pub hedged: u64,
}

/// Full outcome of one engine query.
#[derive(Debug, Clone)]
pub struct EngineResponse {
    /// Merged top-k, best first.
    pub hits: Vec<GlobalHit>,
    /// How the query was answered.
    pub served: Served,
    /// Simulated backend latency (slowest partition + merge), when the
    /// backend evaluated the query; `None` for cache/stale/failed
    /// answers.
    pub latency: Option<SimTime>,
}

#[derive(Debug, Default)]
struct Counters {
    cache_hits: AtomicU64,
    full: AtomicU64,
    degraded: AtomicU64,
    stale: AtomicU64,
    failed: AtomicU64,
    hedged: AtomicU64,
}

/// Outcome of the single choose-and-dispatch pass for one query.
struct DispatchPlan {
    /// Partitions with a successfully dispatched, surviving replica.
    served: Vec<u32>,
    /// Chosen partitions that could not be served.
    missing: usize,
    /// Extra simulated latency added by hedged retries.
    hedge_extra: SimTime,
    /// Hedged retries dispatched.
    hedges: u64,
}

impl DispatchPlan {
    fn with_capacity(n: usize) -> Self {
        DispatchPlan { served: Vec::with_capacity(n), missing: 0, hedge_extra: 0, hedges: 0 }
    }
}

/// Outcome of dispatching one query on one replica group.
struct OneDispatch {
    /// A surviving replica took the query.
    served: bool,
    /// Hedged retries dispatched (0 or 1).
    hedges: u64,
    /// Extra simulated latency a hedge added.
    extra: SimTime,
}

/// The engine. Owns its broker (which owns an `Arc`-backed index clone),
/// cache, and replica state; `Send + Sync`, all methods `&self`.
///
/// Generic over an observability [`Recorder`] (default: the zero-sized
/// [`NoopRecorder`], which compiles the instrumentation away entirely).
/// Attach a live recorder with [`DistributedEngine::with_obs`]; results
/// are bit-for-bit identical either way — recorders observe, they never
/// steer (`tests/observability.rs` pins this).
pub struct DistributedEngine<C: ResultCache, R: Recorder = NoopRecorder> {
    broker: DocBroker<R>,
    cache: ShardedCache<C>,
    groups: Vec<Mutex<ReplicaGroup>>,
    counters: Counters,
    /// Partitions to query per request when a selector is used.
    selection_width: Option<usize>,
    selector: Option<Arc<dyn CollectionSelector + Send + Sync>>,
    /// Outage schedule consulted at dispatch time and by `advance_to`.
    faults: Option<Arc<FaultSchedule>>,
    /// Per-query latency budget gating hedged retries.
    deadline: Option<SimTime>,
    /// The engine's simulated clock (µs), advanced by `advance_to`.
    clock: AtomicU64,
    /// Observability sink (cloned into the broker so both emit to the
    /// same instruments).
    recorder: R,
}

/// A stable cache key for a term multiset.
pub fn query_key(terms: &[TermId]) -> u64 {
    let mut sorted: Vec<u32> = terms.iter().map(|t| t.0).collect();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in sorted {
        h ^= u64::from(t);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl<C: ResultCache> DistributedEngine<C> {
    /// Create an engine over `index` with `replicas` per partition.
    pub fn new(index: &PartitionedIndex, cache: C, replicas: usize) -> Self {
        let groups =
            (0..index.num_partitions()).map(|_| Mutex::new(ReplicaGroup::new(replicas))).collect();
        DistributedEngine {
            broker: DocBroker::single_site(index),
            cache: ShardedCache::single(cache),
            groups,
            counters: Counters::default(),
            selection_width: None,
            selector: None,
            faults: None,
            deadline: None,
            clock: AtomicU64::new(0),
            recorder: NoopRecorder,
        }
    }
}

impl<C: ResultCache, R: Recorder> DistributedEngine<C, R> {
    /// Swap in an observability recorder: every stage of every query
    /// (admission, cache lookup, scatter, per-shard service, gather,
    /// hedges, outcome) flows to it as [`Event`]s. The recorder is
    /// cloned into the broker so engine- and broker-level events land in
    /// the same instruments; share one `Arc<ObsRecorder>` across engines
    /// for tier-wide accounting.
    pub fn with_obs<R2: Recorder + Clone>(self, recorder: R2) -> DistributedEngine<C, R2> {
        DistributedEngine {
            broker: self.broker.with_recorder(recorder.clone()),
            cache: self.cache,
            groups: self.groups,
            counters: self.counters,
            selection_width: self.selection_width,
            selector: self.selector,
            faults: self.faults,
            deadline: self.deadline,
            clock: self.clock,
            recorder,
        }
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Enable collection selection: only the top-`m` partitions serve each
    /// query.
    pub fn with_selection(
        mut self,
        selector: Arc<dyn CollectionSelector + Send + Sync>,
        m: usize,
    ) -> Self {
        assert!(m >= 1);
        self.selector = Some(selector);
        self.selection_width = Some(m);
        self
    }

    /// Evaluate each query's partitions concurrently on a pool of
    /// `threads` workers. Results are bit-for-bit identical to the
    /// sequential path.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.broker = self.broker.parallel(threads);
        self
    }

    /// Whether partition evaluation runs on a worker pool.
    pub fn is_parallel(&self) -> bool {
        self.broker.is_parallel()
    }

    /// Pick the ranked evaluator shards run (see
    /// [`DocBroker::with_strategy`]): results, latencies, and counters
    /// are bit-identical across strategies; only the measured work in
    /// `broker().eval_stats()` differs.
    pub fn with_strategy(mut self, eval: EvalStrategy) -> Self {
        self.broker = self.broker.with_strategy(eval);
        self
    }

    /// Drive replica liveness from an outage schedule: `advance_to`
    /// applies its state, and dispatch consults it for mid-query replica
    /// deaths (triggering hedged retries). The same `Arc` can drive
    /// several engines, which keeps fault-equivalence tests honest.
    pub fn with_faults(mut self, schedule: Arc<FaultSchedule>) -> Self {
        self.faults = Some(schedule);
        self.advance_to(self.now());
        self
    }

    /// Bound the simulated time a query may spend on one partition:
    /// a hedged retry is attempted only when first attempt + retry fit
    /// within `deadline`.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        assert!(deadline > 0);
        self.deadline = Some(deadline);
        self
    }

    /// The engine's simulated clock.
    pub fn now(&self) -> SimTime {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advance the simulated clock to `t` and apply the fault schedule's
    /// outage state to every replica group. Idempotent; callable from any
    /// thread while other threads serve queries.
    pub fn advance_to(&self, t: SimTime) {
        self.clock.store(t, Ordering::Relaxed);
        let Some(faults) = &self.faults else { return };
        for (p, group) in self.groups.iter().enumerate() {
            let replicas = faults.num_replicas(p);
            if replicas == 0 {
                continue;
            }
            let mut g = lock_recovering(group);
            for r in 0..replicas {
                // Graceful on schedules wider than the group.
                g.set_alive(r, !faults.is_down(p, r, t));
            }
        }
    }

    /// Mark one replica of one partition down or up. Returns `false`
    /// (changing nothing) when either index is out of range.
    pub fn set_replica_alive(&self, partition: usize, replica: usize, up: bool) -> bool {
        match self.groups.get(partition) {
            Some(g) => lock_recovering(g).set_alive(replica, up),
            None => false,
        }
    }

    /// Queries dispatched so far, per partition and replica.
    pub fn dispatch_counts(&self) -> Vec<Vec<u64>> {
        self.groups.iter().map(|g| lock_recovering(g).dispatched().to_vec()).collect()
    }

    /// The partitions a query would address (before availability).
    fn choose(&self, terms: &[TermId]) -> Vec<u32> {
        match (&self.selector, self.selection_width) {
            (Some(sel), Some(m)) => sel.rank(terms).into_iter().take(m).map(|(p, _)| p).collect(),
            _ => (0..self.groups.len() as u32).collect(),
        }
    }

    fn group_available(&self, p: u32) -> bool {
        self.groups.get(p as usize).is_some_and(|g| lock_recovering(g).available())
    }

    /// Serve a query.
    pub fn query(&self, terms: &[TermId], k: usize) -> (Vec<GlobalHit>, Served) {
        let r = self.query_full(terms, k);
        (r.hits, r.served)
    }

    /// Serve a query, reporting the simulated backend latency alongside
    /// the results.
    pub fn query_full(&self, terms: &[TermId], k: usize) -> EngineResponse {
        self.serve(terms, k, false)
    }

    /// Serve a query, allowing stale cache results when the backend is
    /// down (the dependability role of caches). Unlike [`Self::query`],
    /// a backend outage consults the cache *ignoring freshness*.
    pub fn query_stale_ok(&self, terms: &[TermId], k: usize) -> (Vec<GlobalHit>, Served) {
        let r = self.serve(terms, k, true);
        (r.hits, r.served)
    }

    /// Serve a batch of queries with amortized locking: admission (cache
    /// consult) runs per query in order, dispatch runs **partition-outer**
    /// (each replica-group lock taken once for the whole batch), and
    /// shard evaluation is admitted to the scatter pool in one enqueue
    /// ([`DocBroker::query_selected_batch`]).
    ///
    /// Responses and every counter (engine, cache, broker, dispatch
    /// counts) are identical to calling [`Self::query_full`] once per
    /// query in order, with one documented caveat: a query whose
    /// duplicate appears earlier in the batch is answered from the cache
    /// at resolution time, so if the cached entry is *evicted* while the
    /// batch is in flight the duplicate is re-evaluated (counted
    /// full/degraded where the loop form would have counted a cache
    /// hit). With a cache wide enough to hold the batch's distinct
    /// queries — the throughput-bench regime — batch ≡ loop exactly.
    ///
    /// The observability stream carries the same events with the same
    /// payloads, phase-ordered: all `QueryStart`/`CacheLookup`s (query
    /// order), then `Hedge`s (partition order), then per-query
    /// scatter/gather blocks (query order), then `Outcome`s (query
    /// order). Stale serving is not consulted (`stale_ok = false`
    /// semantics).
    pub fn query_batch(&self, queries: &[Vec<TermId>], k: usize) -> Vec<EngineResponse> {
        let now = self.now();
        enum Slot {
            /// Resolved at admission (fresh cache hit).
            Done(EngineResponse),
            /// Duplicate of an earlier cold query in this batch; answered
            /// from the cache at resolution time.
            Dup { key: u64 },
            /// Admitted for evaluation.
            Cold { key: u64, chosen: Vec<u32> },
        }
        // --- Admission, in query order. Duplicates are detected *before*
        // the cache consult so cache hit/miss counters match the loop
        // form (where the duplicate's consult happens after the original
        // resolved, and hits).
        let mut pending: HashSet<u64> = HashSet::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(queries.len());
        for terms in queries {
            let key = query_key(terms);
            self.recorder.record(Event::QueryStart { qid: key, now });
            if pending.contains(&key) {
                slots.push(Slot::Dup { key });
                continue;
            }
            if let Some(hit) = self.cache.get_recorded(key, &self.recorder, now) {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.record_outcome(key, now, ObsOutcome::CacheHit, None);
                slots.push(Slot::Done(EngineResponse {
                    hits: hit,
                    served: Served::CacheHit,
                    latency: None,
                }));
                continue;
            }
            pending.insert(key);
            slots.push(Slot::Cold { key, chosen: self.choose(terms) });
        }
        // --- Dispatch, partition-outer: one lock acquisition per replica
        // group for the whole batch. Within a group, queries dispatch in
        // query order, so the round-robin cursor sees exactly the
        // sequence the loop form produces. `served` is rebuilt in each
        // query's own `chosen` order so gather (events, busy time,
        // latency) is untouched by the transposition.
        let cold: Vec<usize> =
            (0..slots.len()).filter(|&i| matches!(slots[i], Slot::Cold { .. })).collect();
        let mut staged: Vec<(Vec<(usize, u32)>, DispatchPlan)> =
            cold.iter().map(|_| (Vec::new(), DispatchPlan::with_capacity(0))).collect();
        let mut by_part: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.groups.len()];
        for (ci, &si) in cold.iter().enumerate() {
            let Slot::Cold { chosen, .. } = &slots[si] else { unreachable!() };
            for (pos, &p) in chosen.iter().enumerate() {
                match by_part.get_mut(p as usize) {
                    Some(interested) => interested.push((ci, pos)),
                    None => staged[ci].1.missing += 1,
                }
            }
        }
        for (pu, interested) in by_part.iter().enumerate() {
            if interested.is_empty() {
                continue;
            }
            let mut group = lock_recovering(&self.groups[pu]);
            for &(ci, pos) in interested {
                let Slot::Cold { key, .. } = slots[cold[ci]] else { unreachable!() };
                let one = self.dispatch_one(&mut group, pu as u32, &queries[cold[ci]], now, key);
                let (served, plan) = &mut staged[ci];
                if one.served {
                    served.push((pos, pu as u32));
                } else {
                    plan.missing += 1;
                }
                plan.hedges += one.hedges;
                plan.hedge_extra = plan.hedge_extra.max(one.extra);
            }
        }
        let plans: Vec<DispatchPlan> = staged
            .into_iter()
            .map(|(mut served, mut plan)| {
                served.sort_unstable_by_key(|&(pos, _)| pos);
                plan.served = served.into_iter().map(|(_, p)| p).collect();
                plan
            })
            .collect();
        // --- Evaluation: one broker batch over every cold query with a
        // non-empty plan (a single pool-lock acquisition admits all of
        // their shard tasks).
        let broker_batch: Vec<BatchQuery<'_>> = cold
            .iter()
            .zip(&plans)
            .filter(|(_, plan)| !plan.served.is_empty())
            .map(|(&si, plan)| {
                let Slot::Cold { key, .. } = slots[si] else { unreachable!() };
                BatchQuery { terms: &queries[si], k, parts: plan.served.clone(), qid: key }
            })
            .collect();
        let mut evaluated = self.broker.query_selected_batch(&broker_batch, now).into_iter();
        // --- Resolution, in query order.
        let mut plans = plans.into_iter();
        slots
            .into_iter()
            .zip(queries)
            .map(|(slot, terms)| match slot {
                Slot::Done(r) => r,
                Slot::Dup { key } => match self.cache.get_recorded(key, &self.recorder, now) {
                    Some(hit) => {
                        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                        self.record_outcome(key, now, ObsOutcome::CacheHit, None);
                        EngineResponse { hits: hit, served: Served::CacheHit, latency: None }
                    }
                    // Evicted while the batch was in flight: fall back to
                    // the ordinary cold path (the documented divergence).
                    None => self.evaluate_cold(terms, k, key, now),
                },
                Slot::Cold { key, .. } => {
                    let plan = plans.next().expect("one plan per cold query");
                    self.counters.hedged.fetch_add(plan.hedges, Ordering::Relaxed);
                    if plan.served.is_empty() {
                        self.counters.failed.fetch_add(1, Ordering::Relaxed);
                        self.record_outcome(key, now, ObsOutcome::Failed, None);
                        return EngineResponse {
                            hits: Vec::new(),
                            served: Served::Failed,
                            latency: None,
                        };
                    }
                    let resp = evaluated.next().expect("one response per evaluated query");
                    self.resolve_evaluated(key, now, &plan, resp)
                }
            })
            .collect()
    }

    /// One pass over the chosen partitions: per group, availability and
    /// dispatch are decided under a **single** lock acquisition, so a
    /// group dying concurrently is observed as `None` and dropped rather
    /// than queried anyway. When a fault schedule is attached, a replica
    /// whose outage begins mid-query loses the attempt and the engine
    /// hedges once on another live replica (if the deadline leaves room).
    fn dispatch_partitions(
        &self,
        chosen: &[u32],
        terms: &[TermId],
        now: SimTime,
        qid: u64,
    ) -> DispatchPlan {
        let mut plan = DispatchPlan::with_capacity(chosen.len());
        for &p in chosen {
            let pu = p as usize;
            let Some(group) = self.groups.get(pu) else {
                plan.missing += 1;
                continue;
            };
            let mut group = lock_recovering(group);
            let one = self.dispatch_one(&mut group, p, terms, now, qid);
            drop(group);
            if one.served {
                plan.served.push(p);
            } else {
                plan.missing += 1;
            }
            plan.hedges += one.hedges;
            plan.hedge_extra = plan.hedge_extra.max(one.extra);
        }
        plan
    }

    /// Dispatch one query on one **already locked** replica group: pick a
    /// replica (round-robin), consult the fault schedule for a mid-query
    /// death, and hedge once on a different live replica if the deadline
    /// leaves room. Shared by the per-query and batched dispatch passes,
    /// so both advance each group's round-robin cursor through the exact
    /// same decision sequence.
    fn dispatch_one(
        &self,
        group: &mut ReplicaGroup,
        p: u32,
        terms: &[TermId],
        now: SimTime,
        qid: u64,
    ) -> OneDispatch {
        let pu = p as usize;
        let Some(first) = group.dispatch() else {
            return OneDispatch { served: false, hedges: 0, extra: 0 };
        };
        let Some(faults) = &self.faults else {
            return OneDispatch { served: true, hedges: 0, extra: 0 };
        };
        let svc = self.broker.service_time(pu, terms).ceil() as SimTime;
        if !faults.fails_during(pu, first, now, now + svc) {
            return OneDispatch { served: true, hedges: 0, extra: 0 };
        }
        // First replica dies mid-query. Hedge once, on a different
        // replica, only if attempt + retry fit the deadline.
        let fits_deadline = self.deadline.is_none_or(|d| 2 * svc <= d);
        let retry = if fits_deadline { group.dispatch_excluding(first) } else { None };
        match retry {
            Some(second) if !faults.fails_during(pu, second, now + svc, now + 2 * svc) => {
                self.recorder.record(Event::Hedge { qid, now, partition: p, extra_us: svc as f64 });
                OneDispatch { served: true, hedges: 1, extra: svc }
            }
            other => {
                // The retry (if any) was dispatched but also lost.
                if other.is_some() {
                    self.recorder.record(Event::Hedge {
                        qid,
                        now,
                        partition: p,
                        extra_us: svc as f64,
                    });
                }
                OneDispatch { served: false, hedges: u64::from(other.is_some()), extra: 0 }
            }
        }
    }

    /// The one serving path behind [`Self::query_full`] and
    /// [`Self::query_stale_ok`]: cache consult, then a single
    /// choose-and-dispatch pass, then evaluation — selection,
    /// availability, and dispatch each happen exactly once per query.
    fn serve(&self, terms: &[TermId], k: usize, stale_ok: bool) -> EngineResponse {
        let now = self.now();
        let key = query_key(terms);
        self.recorder.record(Event::QueryStart { qid: key, now });
        if let Some(hit) = self.cache.get_recorded(key, &self.recorder, now) {
            if stale_ok && !self.choose(terms).iter().any(|&p| self.group_available(p)) {
                self.counters.stale.fetch_add(1, Ordering::Relaxed);
                self.record_outcome(key, now, ObsOutcome::StaleFromCache, None);
                return EngineResponse { hits: hit, served: Served::StaleFromCache, latency: None };
            }
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::CacheHit, None);
            return EngineResponse { hits: hit, served: Served::CacheHit, latency: None };
        }
        self.evaluate_cold(terms, k, key, now)
    }

    /// The cold path behind a cache miss: one choose-and-dispatch pass,
    /// scatter-gather evaluation, cache fill, and outcome accounting.
    fn evaluate_cold(&self, terms: &[TermId], k: usize, key: u64, now: SimTime) -> EngineResponse {
        let chosen = self.choose(terms);
        let plan = self.dispatch_partitions(&chosen, terms, now, key);
        self.counters.hedged.fetch_add(plan.hedges, Ordering::Relaxed);
        if plan.served.is_empty() {
            // Whole backend (for this query) is down, and the cache
            // already missed: nothing to serve.
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Failed, None);
            return EngineResponse { hits: Vec::new(), served: Served::Failed, latency: None };
        }
        let resp = self.broker.query_selected_at(terms, k, &plan.served, key, now);
        self.resolve_evaluated(key, now, &plan, resp)
    }

    /// Shared tail of the cold path: turn a brokered response for `plan`
    /// into the engine response — cache fill, counters, outcome event.
    fn resolve_evaluated(
        &self,
        key: u64,
        now: SimTime,
        plan: &DispatchPlan,
        resp: BrokeredResponse,
    ) -> EngineResponse {
        self.cache.put(key, resp.hits.clone());
        let latency = resp.latency + plan.hedge_extra;
        let served = if plan.missing == 0 {
            self.counters.full.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Full, Some(latency));
            Served::Full
        } else {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Degraded, Some(latency));
            Served::Degraded { missing: plan.missing }
        };
        EngineResponse { hits: resp.hits, served, latency: Some(latency) }
    }

    fn record_outcome(
        &self,
        qid: u64,
        now: SimTime,
        outcome: ObsOutcome,
        latency: Option<SimTime>,
    ) {
        self.recorder.record(Event::Outcome { qid, now, outcome, latency_us: latency });
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            full: self.counters.full.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            hedged: self.counters.hedged.load(Ordering::Relaxed),
        }
    }

    /// The cache's own counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// The broker, for busy-time inspection.
    pub fn broker(&self) -> &DocBroker<R> {
        &self.broker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCache;
    use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
    use dwr_partition::parted::Corpus;

    fn setup() -> PartitionedIndex {
        let corpus: Corpus =
            (0..24u32).map(|d| vec![(TermId(d % 5), 2), (TermId(50 + d % 3), 1)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, 4);
        PartitionedIndex::build(&corpus, &a, 4)
    }

    #[test]
    fn cache_hit_on_repeat() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        let (r1, s1) = e.query(&[TermId(1)], 5);
        assert_eq!(s1, Served::Full);
        let (r2, s2) = e.query(&[TermId(1)], 5);
        assert_eq!(s2, Served::CacheHit);
        assert_eq!(r1, r2);
        assert_eq!(e.stats().cache_hits, 1);
    }

    #[test]
    fn query_key_is_order_insensitive() {
        assert_eq!(query_key(&[TermId(1), TermId(2)]), query_key(&[TermId(2), TermId(1)]));
        assert_ne!(query_key(&[TermId(1)]), query_key(&[TermId(2)]));
    }

    #[test]
    fn replica_failover_keeps_full_service() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        e.set_replica_alive(0, 0, false); // one replica of partition 0 down
        let (_, s) = e.query(&[TermId(2)], 5);
        assert_eq!(s, Served::Full, "second replica covers");
    }

    #[test]
    fn dead_group_degrades_results() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        e.set_replica_alive(0, 0, false); // partition 0 gone entirely
        let (hits, s) = e.query(&[TermId(2)], 24);
        assert_eq!(s, Served::Degraded { missing: 1 });
        // Documents of partition 0 (globals 0,4,8,...) are absent.
        assert!(hits.iter().all(|h| h.doc % 4 != 0), "{hits:?}");
    }

    #[test]
    fn stale_serving_during_total_outage() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        let (fresh, _) = e.query(&[TermId(3)], 5); // populate cache
        for p in 0..4 {
            e.set_replica_alive(p, 0, false);
        }
        let (stale, s) = e.query_stale_ok(&[TermId(3)], 5);
        assert_eq!(s, Served::StaleFromCache);
        assert_eq!(stale, fresh);
        // A query never seen before cannot be served at all.
        let (none, s2) = e.query_stale_ok(&[TermId(4)], 5);
        assert_eq!(s2, Served::Failed);
        assert!(none.is_empty());
    }

    #[test]
    fn selection_limits_partitions() {
        let pi = setup();
        let sel = dwr_partition::select::CoriSelector::from_partitions(&pi);
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1).with_selection(Arc::new(sel), 2);
        let (hits, s) = e.query(&[TermId(1)], 24);
        assert_eq!(s, Served::Full);
        // Only 2 of 4 partitions answered: at most 12 of 24 docs reachable.
        assert!(hits.len() <= 12);
    }

    #[test]
    fn stats_accumulate() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        e.query(&[TermId(0)], 5);
        e.query(&[TermId(0)], 5);
        e.query(&[TermId(1)], 5);
        let s = e.stats();
        assert_eq!(s.full, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(e.cache_stats().misses, 2);
    }

    #[test]
    fn query_full_reports_latency_only_for_backend_answers() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        let first = e.query_full(&[TermId(1)], 5);
        assert_eq!(first.served, Served::Full);
        assert!(first.latency.is_some_and(|l| l > 0));
        let second = e.query_full(&[TermId(1)], 5);
        assert_eq!(second.served, Served::CacheHit);
        assert!(second.latency.is_none());
    }

    #[test]
    fn engine_is_send_sync_and_serves_from_threads() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let pi = setup();
        let e = Arc::new(DistributedEngine::new(&pi, LruCache::new(64), 2));
        assert_send_sync(&*e);
        let baseline = e.query(&[TermId(1)], 5).0;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = Arc::clone(&e);
                let baseline = baseline.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let (hits, served) = e.query(&[TermId(1)], 5);
                        assert_eq!(hits, baseline);
                        assert!(matches!(served, Served::CacheHit | Served::Full));
                    }
                });
            }
        });
        let s = e.stats();
        assert_eq!(s.cache_hits + s.full, 101);
    }

    #[test]
    fn set_replica_alive_out_of_range_is_ignored() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        assert!(!e.set_replica_alive(99, 0, false), "bad partition");
        assert!(!e.set_replica_alive(0, 99, false), "bad replica");
        assert!(e.set_replica_alive(0, 1, false));
        let (_, s) = e.query(&[TermId(1)], 5);
        assert_eq!(s, Served::Full, "state untouched by bad indices");
    }

    fn down(start: SimTime, end: SimTime) -> dwr_avail::failure::DownInterval {
        dwr_avail::failure::DownInterval { start, end }
    }

    #[test]
    fn fault_schedule_drives_replica_state() {
        let pi = setup();
        // Partition 0's only replica is down over the second simulated
        // second (wide enough that queries near it don't graze it
        // mid-flight: service times are a few hundred µs).
        let sec = 1_000_000;
        let schedule = FaultSchedule::from_intervals(
            vec![vec![vec![down(sec, 2 * sec)]], vec![vec![]], vec![vec![]], vec![vec![]]],
            10 * sec,
        );
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1).with_faults(Arc::new(schedule));
        let (_, s) = e.query(&[TermId(2)], 24);
        assert_eq!(s, Served::Full, "up before the outage");
        e.advance_to(sec + sec / 2);
        let (_, s) = e.query(&[TermId(3)], 24);
        assert_eq!(s, Served::Degraded { missing: 1 }, "outage applied");
        e.advance_to(3 * sec);
        let (_, s) = e.query(&[TermId(4)], 24);
        assert_eq!(s, Served::Full, "repair applied");
        assert_eq!(e.now(), 3 * sec);
    }

    /// A 2-partition, 2-replica setting where replica 0 of partition 0
    /// goes down just after dispatch time 0 — i.e. mid-query for any
    /// service time > 1 µs.
    fn setup_mid_query_death() -> (PartitionedIndex, Arc<FaultSchedule>) {
        let corpus: Corpus = (0..24u32).map(|d| vec![(TermId(d % 5), 2)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, 2);
        let pi = PartitionedIndex::build(&corpus, &a, 2);
        let schedule = FaultSchedule::from_intervals(
            vec![vec![vec![down(1, 1_000_000)], vec![]], vec![vec![], vec![]]],
            2_000_000,
        );
        (pi, Arc::new(schedule))
    }

    #[test]
    fn mid_query_death_is_hedged_on_another_replica() {
        let (pi, schedule) = setup_mid_query_death();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2).with_faults(schedule);
        let r = e.query_full(&[TermId(1)], 10);
        assert_eq!(r.served, Served::Full, "the hedge covers the dead replica");
        assert_eq!(e.stats().hedged, 1);
        let counts = e.dispatch_counts();
        assert_eq!(counts[0], vec![1, 1], "first attempt plus hedge on partition 0");
        assert_eq!(counts[1].iter().sum::<u64>(), 1, "partition 1 served in one attempt");
    }

    #[test]
    fn hedge_unavailable_degrades_the_partition() {
        let pi = setup();
        // Single replica per partition: a mid-query death has no hedge
        // target, so the partition is dropped as degraded.
        let schedule = FaultSchedule::from_intervals(
            vec![vec![vec![down(1, 1_000_000)]], vec![vec![]], vec![vec![]], vec![vec![]]],
            2_000_000,
        );
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1).with_faults(Arc::new(schedule));
        let (_, s) = e.query(&[TermId(2)], 24);
        assert_eq!(s, Served::Degraded { missing: 1 });
        assert_eq!(e.stats().hedged, 0);
    }

    #[test]
    fn deadline_blocks_the_hedged_retry() {
        let (pi, schedule) = setup_mid_query_death();
        // A 1 µs deadline can never fit attempt + retry: degrade instead.
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_faults(schedule)
            .with_deadline(1);
        let (_, s) = e.query(&[TermId(1)], 10);
        assert_eq!(s, Served::Degraded { missing: 1 });
        assert_eq!(e.stats().hedged, 0, "no retry was dispatched");
        assert_eq!(e.dispatch_counts()[0], vec![1, 0], "replica 1 untouched");
    }

    /// Regression for the check-then-dispatch race: pre-fix, the engine
    /// probed availability and dispatched under *separate* lock
    /// acquisitions and ignored a `None` dispatch, so a group dying in
    /// between was still queried and counted `Full`. Post-fix, every
    /// evaluated partition corresponds to exactly one successful dispatch
    /// (no fault schedule ⇒ no hedges), an invariant this test checks
    /// under a concurrent replica killer.
    #[test]
    fn full_service_implies_one_dispatch_per_partition() {
        use std::sync::atomic::AtomicBool;
        // A deliberately wide index: with 256 partitions, the pre-fix
        // availability pass and dispatch pass are microseconds apart, so
        // the killer thread lands inside the TOCTOU window even when a
        // timeslice preemption is the only source of interleaving.
        const P: usize = 256;
        let corpus: Corpus = (0..P as u32).map(|d| vec![(TermId(d % 7), 1)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, P);
        let pi = PartitionedIndex::build(&corpus, &a, P);
        let e = Arc::new(DistributedEngine::new(&pi, LruCache::new(4), 1));
        let stop = Arc::new(AtomicBool::new(false));
        let killer = {
            let e = Arc::clone(&e);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut up = false;
                while !stop.load(Ordering::Relaxed) {
                    e.set_replica_alive(0, 0, up);
                    up = !up;
                }
            })
        };
        let mut evaluated = 0u64;
        for q in 0..5_000u32 {
            // Distinct single-term queries: the cache never answers.
            let (_, served) = e.query(&[TermId(1_000 + q)], 5);
            evaluated += match served {
                Served::Full => P as u64,
                Served::Degraded { missing } => (P - missing) as u64,
                Served::Failed => 0,
                Served::CacheHit | Served::StaleFromCache | Served::Shed => {
                    unreachable!("distinct cold queries on a single-site engine")
                }
            };
        }
        stop.store(true, Ordering::Relaxed);
        killer.join().expect("killer thread");
        let dispatched: u64 = e.dispatch_counts().iter().flatten().sum();
        assert_eq!(
            dispatched, evaluated,
            "every partition counted as served must have had a successful dispatch"
        );
    }

    /// An LRU whose `get` panics on one key: a client thread dies while
    /// holding the cache shard lock, and the engine must keep serving
    /// every other client.
    struct BombCache {
        inner: LruCache,
        bomb: u64,
    }

    impl crate::cache::ResultCache for BombCache {
        fn get(&mut self, key: u64) -> Option<&crate::cache::CachedResults> {
            assert_ne!(key, self.bomb, "boom");
            self.inner.get(key)
        }
        fn put(&mut self, key: u64, value: crate::cache::CachedResults) {
            self.inner.put(key, value);
        }
        fn stats(&self) -> crate::cache::CacheStats {
            self.inner.stats()
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn name(&self) -> &'static str {
            "Bomb"
        }
    }

    #[test]
    fn panicked_client_does_not_wedge_other_threads() {
        let pi = setup();
        let bomb = query_key(&[TermId(42)]);
        let e =
            Arc::new(DistributedEngine::new(&pi, BombCache { inner: LruCache::new(16), bomb }, 2));
        let baseline = e.query(&[TermId(1)], 5).0;
        let poisoner = Arc::clone(&e);
        std::thread::spawn(move || poisoner.query(&[TermId(42)], 5))
            .join()
            .expect_err("the bomb query panics its client");
        // Other clients keep hitting the same (now-recovered) shard and
        // the replica groups.
        std::thread::scope(|s| {
            for _ in 0..3 {
                let e = Arc::clone(&e);
                let baseline = baseline.clone();
                s.spawn(move || {
                    let (hits, served) = e.query(&[TermId(1)], 5);
                    assert_eq!(hits, baseline);
                    assert!(matches!(served, Served::CacheHit | Served::Full));
                    e.set_replica_alive(0, 0, false);
                    e.set_replica_alive(0, 0, true);
                });
            }
        });
    }

    /// Batch ≡ loop on the engine: responses and every counter agree,
    /// including duplicate queries inside one batch (answered from the
    /// cache exactly as the loop form answers them) and repeat batches
    /// (all cache hits).
    #[test]
    fn engine_batch_matches_query_at_a_time_loop() {
        let pi = setup();
        let looped = DistributedEngine::new(&pi, LruCache::new(64), 2);
        let batched = DistributedEngine::new(&pi, LruCache::new(64), 2);
        // 20 queries over 10 distinct keys: every key appears twice, so
        // the batch exercises the in-flight duplicate path.
        let queries: Vec<Vec<TermId>> =
            (0..20u32).map(|q| vec![TermId(q % 5), TermId(50 + (q / 5) % 2)]).collect();
        let a: Vec<EngineResponse> = queries.iter().map(|t| looped.query_full(t, 5)).collect();
        let b = batched.query_batch(&queries, 5);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.hits, y.hits, "query {i}");
            assert_eq!(x.served, y.served, "query {i}");
            assert_eq!(x.latency, y.latency, "query {i}");
        }
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.cache_stats().hits, batched.cache_stats().hits);
        assert_eq!(looped.cache_stats().misses, batched.cache_stats().misses);
        assert_eq!(looped.dispatch_counts(), batched.dispatch_counts());
        assert_eq!(looped.broker().busy_time(), batched.broker().busy_time());
        assert_eq!(looped.broker().eval_stats(), batched.broker().eval_stats());
        // A second identical batch is answered entirely from the cache.
        let again = batched.query_batch(&queries, 5);
        assert!(again.iter().all(|r| r.served == Served::CacheHit));
    }

    #[test]
    fn engine_batch_matches_loop_under_faults_and_selection() {
        let pi = setup();
        let sec = 1_000_000;
        let schedule = Arc::new(FaultSchedule::from_intervals(
            vec![vec![vec![down(1, sec)]], vec![vec![]], vec![vec![]], vec![vec![]]],
            2 * sec,
        ));
        let sel = Arc::new(dwr_partition::select::CoriSelector::from_partitions(&pi));
        let mk = || {
            DistributedEngine::new(&pi, LruCache::new(64), 1)
                .with_selection(Arc::clone(&sel) as _, 3)
                .with_faults(Arc::clone(&schedule))
        };
        let (looped, batched) = (mk(), mk());
        let queries: Vec<Vec<TermId>> = (0..12u32).map(|q| vec![TermId(q % 5)]).collect();
        let a: Vec<EngineResponse> = queries.iter().map(|t| looped.query_full(t, 8)).collect();
        let b = batched.query_batch(&queries, 8);
        assert!(a.iter().any(|r| matches!(r.served, Served::Degraded { .. })));
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.hits, y.hits, "query {i}");
            assert_eq!(x.served, y.served, "query {i}");
            assert_eq!(x.latency, y.latency, "query {i}");
        }
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.dispatch_counts(), batched.dispatch_counts());
    }

    #[test]
    fn engine_strategy_is_transparent_to_responses() {
        let pi = setup();
        let ex = DistributedEngine::new(&pi, LruCache::new(64), 2)
            .with_strategy(EvalStrategy::Exhaustive);
        let ms =
            DistributedEngine::new(&pi, LruCache::new(64), 2).with_strategy(EvalStrategy::MaxScore);
        for q in 0..20u32 {
            let terms = [TermId(q % 5), TermId(50 + q % 3)];
            let a = ex.query_full(&terms, 10);
            let b = ms.query_full(&terms, 10);
            assert_eq!(a.hits, b.hits, "query {q}");
            assert_eq!(a.served, b.served, "query {q}");
            assert_eq!(a.latency, b.latency, "query {q}");
        }
        assert_eq!(ex.stats(), ms.stats());
        assert!(
            ms.broker().eval_stats().postings_scanned <= ex.broker().eval_stats().postings_scanned
        );
    }

    #[test]
    fn parallel_engine_matches_sequential_engine() {
        let pi = setup();
        let seq = DistributedEngine::new(&pi, LruCache::new(16), 2);
        let par = DistributedEngine::new(&pi, LruCache::new(16), 2).with_parallelism(4);
        assert!(par.is_parallel());
        for q in 0..20u32 {
            let terms = [TermId(q % 5), TermId(50 + q % 3)];
            let a = seq.query_full(&terms, 10);
            let b = par.query_full(&terms, 10);
            assert_eq!(a.hits, b.hits, "query {q}");
            assert_eq!(a.served, b.served, "query {q}");
            assert_eq!(a.latency, b.latency, "query {q}");
        }
        assert_eq!(seq.stats(), par.stats());
    }
}
