//! The assembled distributed engine: cache → selection → replicated
//! scatter-gather, with failure masking.
//!
//! This is the component stack of the paper's Figure 3 in one process: a
//! coordinator consults a result cache, optionally narrows the partition
//! set with collection selection, dispatches to a live replica of each
//! chosen partition, merges, and falls back to *stale cached results* when
//! a whole replica group is down ("upon query processor failures, the
//! system returns cached results").

use crate::broker::{DocBroker, GlobalHit};
use crate::cache::ResultCache;
use crate::replica::ReplicaGroup;
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::select::CollectionSelector;
use dwr_text::TermId;

/// How a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Fresh results straight from the cache.
    CacheHit,
    /// Evaluated on the full chosen partition set.
    Full,
    /// Evaluated with some partitions unavailable (degraded results).
    Degraded {
        /// Number of unavailable partitions skipped.
        missing: usize,
    },
    /// Backend entirely unavailable; served stale results from the cache.
    StaleFromCache,
    /// Backend unavailable and the cache had nothing.
    Failed,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Answered from cache (fresh).
    pub cache_hits: u64,
    /// Fully evaluated.
    pub full: u64,
    /// Evaluated with missing partitions.
    pub degraded: u64,
    /// Served stale from cache during an outage.
    pub stale: u64,
    /// Unanswerable.
    pub failed: u64,
}

/// The engine. Owns replica state; borrows the index and cache.
pub struct DistributedEngine<'a, C: ResultCache> {
    broker: DocBroker<'a>,
    cache: C,
    groups: Vec<ReplicaGroup>,
    stats: EngineStats,
    /// Partitions to query per request when a selector is used.
    selection_width: Option<usize>,
    selector: Option<&'a dyn CollectionSelector>,
}

/// A stable cache key for a term multiset.
pub fn query_key(terms: &[TermId]) -> u64 {
    let mut sorted: Vec<u32> = terms.iter().map(|t| t.0).collect();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in sorted {
        h ^= u64::from(t);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl<'a, C: ResultCache> DistributedEngine<'a, C> {
    /// Create an engine over `index` with `replicas` per partition.
    pub fn new(index: &'a PartitionedIndex, cache: C, replicas: usize) -> Self {
        let groups = (0..index.num_partitions()).map(|_| ReplicaGroup::new(replicas)).collect();
        DistributedEngine {
            broker: DocBroker::single_site(index),
            cache,
            groups,
            stats: EngineStats::default(),
            selection_width: None,
            selector: None,
        }
    }

    /// Enable collection selection: only the top-`m` partitions serve each
    /// query.
    pub fn with_selection(mut self, selector: &'a dyn CollectionSelector, m: usize) -> Self {
        assert!(m >= 1);
        self.selector = Some(selector);
        self.selection_width = Some(m);
        self
    }

    /// Mark one replica of one partition down or up.
    pub fn set_replica_alive(&mut self, partition: usize, replica: usize, up: bool) {
        self.groups[partition].set_alive(replica, up);
    }

    /// Serve a query.
    pub fn query(&mut self, terms: &[TermId], k: usize) -> (Vec<GlobalHit>, Served) {
        let key = query_key(terms);
        if let Some(hit) = self.cache.get(key) {
            self.stats.cache_hits += 1;
            return (hit.clone(), Served::CacheHit);
        }
        // Choose partitions.
        let chosen: Vec<u32> = match (self.selector, self.selection_width) {
            (Some(sel), Some(m)) => sel.rank(terms).into_iter().take(m).map(|(p, _)| p).collect(),
            _ => (0..self.groups.len() as u32).collect(),
        };
        // Keep only partitions with a live replica.
        let available: Vec<u32> = chosen
            .iter()
            .copied()
            .filter(|&p| self.groups[p as usize].available())
            .collect();
        for &p in &available {
            let _replica = self.groups[p as usize].dispatch();
        }
        if available.is_empty() {
            // Whole backend (for this query) is down: stale or fail.
            // A stale answer is whatever the cache held before — but we
            // already missed; there is nothing fresh. Re-check under the
            // stale policy: the cache may hold it even though `get`
            // counted a miss above only if it returned None. So: failed
            // unless a previous result was cached, which `get` would have
            // returned. Nothing to serve.
            self.stats.failed += 1;
            return (Vec::new(), Served::Failed);
        }
        let missing = chosen.len() - available.len();
        let resp = self.broker.query_selected(terms, k, &available);
        self.cache.put(key, resp.hits.clone());
        if missing == 0 {
            self.stats.full += 1;
            (resp.hits, Served::Full)
        } else {
            self.stats.degraded += 1;
            (resp.hits, Served::Degraded { missing })
        }
    }

    /// Serve a query, allowing stale cache results when the backend is
    /// down (the dependability role of caches). Unlike [`Self::query`],
    /// a backend outage consults the cache *ignoring freshness*.
    pub fn query_stale_ok(&mut self, terms: &[TermId], k: usize) -> (Vec<GlobalHit>, Served) {
        let key = query_key(terms);
        let backend_up = {
            let chosen: Vec<u32> = match (self.selector, self.selection_width) {
                (Some(sel), Some(m)) => {
                    sel.rank(terms).into_iter().take(m).map(|(p, _)| p).collect()
                }
                _ => (0..self.groups.len() as u32).collect(),
            };
            chosen.iter().any(|&p| self.groups[p as usize].available())
        };
        if !backend_up {
            if let Some(hit) = self.cache.get(key) {
                self.stats.stale += 1;
                return (hit.clone(), Served::StaleFromCache);
            }
            self.stats.failed += 1;
            return (Vec::new(), Served::Failed);
        }
        self.query(terms, k)
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The cache's own counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCache;
    use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
    use dwr_partition::parted::Corpus;

    fn setup() -> PartitionedIndex {
        let corpus: Corpus = (0..24u32)
            .map(|d| vec![(TermId(d % 5), 2), (TermId(50 + d % 3), 1)])
            .collect();
        let a = RoundRobinPartitioner.assign(&corpus, 4);
        PartitionedIndex::build(&corpus, &a, 4)
    }

    #[test]
    fn cache_hit_on_repeat() {
        let pi = setup();
        let mut e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        let (r1, s1) = e.query(&[TermId(1)], 5);
        assert_eq!(s1, Served::Full);
        let (r2, s2) = e.query(&[TermId(1)], 5);
        assert_eq!(s2, Served::CacheHit);
        assert_eq!(r1, r2);
        assert_eq!(e.stats().cache_hits, 1);
    }

    #[test]
    fn query_key_is_order_insensitive() {
        assert_eq!(query_key(&[TermId(1), TermId(2)]), query_key(&[TermId(2), TermId(1)]));
        assert_ne!(query_key(&[TermId(1)]), query_key(&[TermId(2)]));
    }

    #[test]
    fn replica_failover_keeps_full_service() {
        let pi = setup();
        let mut e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        e.set_replica_alive(0, 0, false); // one replica of partition 0 down
        let (_, s) = e.query(&[TermId(2)], 5);
        assert_eq!(s, Served::Full, "second replica covers");
    }

    #[test]
    fn dead_group_degrades_results() {
        let pi = setup();
        let mut e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        e.set_replica_alive(0, 0, false); // partition 0 gone entirely
        let (hits, s) = e.query(&[TermId(2)], 24);
        assert_eq!(s, Served::Degraded { missing: 1 });
        // Documents of partition 0 (globals 0,4,8,...) are absent.
        assert!(hits.iter().all(|h| h.doc % 4 != 0), "{hits:?}");
    }

    #[test]
    fn stale_serving_during_total_outage() {
        let pi = setup();
        let mut e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        let (fresh, _) = e.query(&[TermId(3)], 5); // populate cache
        for p in 0..4 {
            e.set_replica_alive(p, 0, false);
        }
        let (stale, s) = e.query_stale_ok(&[TermId(3)], 5);
        assert_eq!(s, Served::StaleFromCache);
        assert_eq!(stale, fresh);
        // A query never seen before cannot be served at all.
        let (none, s2) = e.query_stale_ok(&[TermId(4)], 5);
        assert_eq!(s2, Served::Failed);
        assert!(none.is_empty());
    }

    #[test]
    fn selection_limits_partitions() {
        let pi = setup();
        let sel = dwr_partition::select::CoriSelector::from_partitions(&pi);
        let mut e = DistributedEngine::new(&pi, LruCache::new(16), 1).with_selection(&sel, 2);
        let (hits, s) = e.query(&[TermId(1)], 24);
        assert_eq!(s, Served::Full);
        // Only 2 of 4 partitions answered: at most 12 of 24 docs reachable.
        assert!(hits.len() <= 12);
    }

    #[test]
    fn stats_accumulate() {
        let pi = setup();
        let mut e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        e.query(&[TermId(0)], 5);
        e.query(&[TermId(0)], 5);
        e.query(&[TermId(1)], 5);
        let s = e.stats();
        assert_eq!(s.full, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(e.cache_stats().misses, 2);
    }
}
