//! The assembled distributed engine: cache → selection → replicated
//! scatter-gather, with failure masking.
//!
//! This is the component stack of the paper's Figure 3 in one process: a
//! coordinator consults a result cache, optionally narrows the partition
//! set with collection selection, dispatches to a live replica of each
//! chosen partition, merges, and falls back to *stale cached results* when
//! a whole replica group is down ("upon query processor failures, the
//! system returns cached results").
//!
//! # Concurrency
//!
//! The engine is split into an immutable shared core and interior-mutable
//! accounting, so every serving method takes `&self` and the whole type
//! is `Send + Sync`:
//!
//! * the [`DocBroker`] owns an `Arc`-backed clone of the partitioned
//!   index and is itself shareable;
//! * the result cache sits behind a [`ShardedCache`] (policy state under
//!   per-shard mutexes);
//! * replica groups are per-partition mutexes (their round-robin cursors
//!   mutate on dispatch);
//! * counters are atomics, snapshot by [`DistributedEngine::stats`].
//!
//! Many client threads can therefore drive one `Arc<DistributedEngine>`,
//! and/or a single client can enable [`DistributedEngine::with_parallelism`]
//! to evaluate the partitions of *each* query concurrently. The parallel
//! scatter path is bit-for-bit identical to the sequential one (see
//! [`crate::broker`]).

use crate::broker::{DocBroker, GlobalHit};
use crate::cache::{ResultCache, ShardedCache};
use crate::replica::ReplicaGroup;
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::select::CollectionSelector;
use dwr_sim::SimTime;
use dwr_text::TermId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Fresh results straight from the cache.
    CacheHit,
    /// Evaluated on the full chosen partition set.
    Full,
    /// Evaluated with some partitions unavailable (degraded results).
    Degraded {
        /// Number of unavailable partitions skipped.
        missing: usize,
    },
    /// Backend entirely unavailable; served stale results from the cache.
    StaleFromCache,
    /// Backend unavailable and the cache had nothing.
    Failed,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Answered from cache (fresh).
    pub cache_hits: u64,
    /// Fully evaluated.
    pub full: u64,
    /// Evaluated with missing partitions.
    pub degraded: u64,
    /// Served stale from cache during an outage.
    pub stale: u64,
    /// Unanswerable.
    pub failed: u64,
}

/// Full outcome of one engine query.
#[derive(Debug, Clone)]
pub struct EngineResponse {
    /// Merged top-k, best first.
    pub hits: Vec<GlobalHit>,
    /// How the query was answered.
    pub served: Served,
    /// Simulated backend latency (slowest partition + merge), when the
    /// backend evaluated the query; `None` for cache/stale/failed
    /// answers.
    pub latency: Option<SimTime>,
}

#[derive(Debug, Default)]
struct Counters {
    cache_hits: AtomicU64,
    full: AtomicU64,
    degraded: AtomicU64,
    stale: AtomicU64,
    failed: AtomicU64,
}

/// The engine. Owns its broker (which owns an `Arc`-backed index clone),
/// cache, and replica state; `Send + Sync`, all methods `&self`.
pub struct DistributedEngine<C: ResultCache> {
    broker: DocBroker,
    cache: ShardedCache<C>,
    groups: Vec<Mutex<ReplicaGroup>>,
    counters: Counters,
    /// Partitions to query per request when a selector is used.
    selection_width: Option<usize>,
    selector: Option<Arc<dyn CollectionSelector + Send + Sync>>,
}

/// A stable cache key for a term multiset.
pub fn query_key(terms: &[TermId]) -> u64 {
    let mut sorted: Vec<u32> = terms.iter().map(|t| t.0).collect();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in sorted {
        h ^= u64::from(t);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl<C: ResultCache> DistributedEngine<C> {
    /// Create an engine over `index` with `replicas` per partition.
    pub fn new(index: &PartitionedIndex, cache: C, replicas: usize) -> Self {
        let groups =
            (0..index.num_partitions()).map(|_| Mutex::new(ReplicaGroup::new(replicas))).collect();
        DistributedEngine {
            broker: DocBroker::single_site(index),
            cache: ShardedCache::single(cache),
            groups,
            counters: Counters::default(),
            selection_width: None,
            selector: None,
        }
    }

    /// Enable collection selection: only the top-`m` partitions serve each
    /// query.
    pub fn with_selection(
        mut self,
        selector: Arc<dyn CollectionSelector + Send + Sync>,
        m: usize,
    ) -> Self {
        assert!(m >= 1);
        self.selector = Some(selector);
        self.selection_width = Some(m);
        self
    }

    /// Evaluate each query's partitions concurrently on a pool of
    /// `threads` workers. Results are bit-for-bit identical to the
    /// sequential path.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.broker = self.broker.parallel(threads);
        self
    }

    /// Whether partition evaluation runs on a worker pool.
    pub fn is_parallel(&self) -> bool {
        self.broker.is_parallel()
    }

    /// Mark one replica of one partition down or up.
    pub fn set_replica_alive(&self, partition: usize, replica: usize, up: bool) {
        self.groups[partition].lock().expect("replica group poisoned").set_alive(replica, up);
    }

    /// The partitions a query would address (before availability).
    fn choose(&self, terms: &[TermId]) -> Vec<u32> {
        match (&self.selector, self.selection_width) {
            (Some(sel), Some(m)) => sel.rank(terms).into_iter().take(m).map(|(p, _)| p).collect(),
            _ => (0..self.groups.len() as u32).collect(),
        }
    }

    fn group_available(&self, p: u32) -> bool {
        self.groups[p as usize].lock().expect("replica group poisoned").available()
    }

    /// Serve a query.
    pub fn query(&self, terms: &[TermId], k: usize) -> (Vec<GlobalHit>, Served) {
        let r = self.query_full(terms, k);
        (r.hits, r.served)
    }

    /// Serve a query, reporting the simulated backend latency alongside
    /// the results.
    pub fn query_full(&self, terms: &[TermId], k: usize) -> EngineResponse {
        let key = query_key(terms);
        if let Some(hit) = self.cache.get(key) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return EngineResponse { hits: hit, served: Served::CacheHit, latency: None };
        }
        // Choose partitions, keep those with a live replica.
        let chosen = self.choose(terms);
        let available: Vec<u32> =
            chosen.iter().copied().filter(|&p| self.group_available(p)).collect();
        for &p in &available {
            let _replica =
                self.groups[p as usize].lock().expect("replica group poisoned").dispatch();
        }
        if available.is_empty() {
            // Whole backend (for this query) is down, and the cache
            // already missed above: nothing to serve.
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            return EngineResponse { hits: Vec::new(), served: Served::Failed, latency: None };
        }
        let missing = chosen.len() - available.len();
        let resp = self.broker.query_selected(terms, k, &available);
        self.cache.put(key, resp.hits.clone());
        let served = if missing == 0 {
            self.counters.full.fetch_add(1, Ordering::Relaxed);
            Served::Full
        } else {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            Served::Degraded { missing }
        };
        EngineResponse { hits: resp.hits, served, latency: Some(resp.latency) }
    }

    /// Serve a query, allowing stale cache results when the backend is
    /// down (the dependability role of caches). Unlike [`Self::query`],
    /// a backend outage consults the cache *ignoring freshness*.
    pub fn query_stale_ok(&self, terms: &[TermId], k: usize) -> (Vec<GlobalHit>, Served) {
        let backend_up = self.choose(terms).iter().any(|&p| self.group_available(p));
        if !backend_up {
            let key = query_key(terms);
            if let Some(hit) = self.cache.get(key) {
                self.counters.stale.fetch_add(1, Ordering::Relaxed);
                return (hit, Served::StaleFromCache);
            }
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            return (Vec::new(), Served::Failed);
        }
        self.query(terms, k)
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            full: self.counters.full.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
        }
    }

    /// The cache's own counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// The broker, for busy-time inspection.
    pub fn broker(&self) -> &DocBroker {
        &self.broker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCache;
    use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
    use dwr_partition::parted::Corpus;

    fn setup() -> PartitionedIndex {
        let corpus: Corpus =
            (0..24u32).map(|d| vec![(TermId(d % 5), 2), (TermId(50 + d % 3), 1)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, 4);
        PartitionedIndex::build(&corpus, &a, 4)
    }

    #[test]
    fn cache_hit_on_repeat() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        let (r1, s1) = e.query(&[TermId(1)], 5);
        assert_eq!(s1, Served::Full);
        let (r2, s2) = e.query(&[TermId(1)], 5);
        assert_eq!(s2, Served::CacheHit);
        assert_eq!(r1, r2);
        assert_eq!(e.stats().cache_hits, 1);
    }

    #[test]
    fn query_key_is_order_insensitive() {
        assert_eq!(query_key(&[TermId(1), TermId(2)]), query_key(&[TermId(2), TermId(1)]));
        assert_ne!(query_key(&[TermId(1)]), query_key(&[TermId(2)]));
    }

    #[test]
    fn replica_failover_keeps_full_service() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        e.set_replica_alive(0, 0, false); // one replica of partition 0 down
        let (_, s) = e.query(&[TermId(2)], 5);
        assert_eq!(s, Served::Full, "second replica covers");
    }

    #[test]
    fn dead_group_degrades_results() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        e.set_replica_alive(0, 0, false); // partition 0 gone entirely
        let (hits, s) = e.query(&[TermId(2)], 24);
        assert_eq!(s, Served::Degraded { missing: 1 });
        // Documents of partition 0 (globals 0,4,8,...) are absent.
        assert!(hits.iter().all(|h| h.doc % 4 != 0), "{hits:?}");
    }

    #[test]
    fn stale_serving_during_total_outage() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        let (fresh, _) = e.query(&[TermId(3)], 5); // populate cache
        for p in 0..4 {
            e.set_replica_alive(p, 0, false);
        }
        let (stale, s) = e.query_stale_ok(&[TermId(3)], 5);
        assert_eq!(s, Served::StaleFromCache);
        assert_eq!(stale, fresh);
        // A query never seen before cannot be served at all.
        let (none, s2) = e.query_stale_ok(&[TermId(4)], 5);
        assert_eq!(s2, Served::Failed);
        assert!(none.is_empty());
    }

    #[test]
    fn selection_limits_partitions() {
        let pi = setup();
        let sel = dwr_partition::select::CoriSelector::from_partitions(&pi);
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1).with_selection(Arc::new(sel), 2);
        let (hits, s) = e.query(&[TermId(1)], 24);
        assert_eq!(s, Served::Full);
        // Only 2 of 4 partitions answered: at most 12 of 24 docs reachable.
        assert!(hits.len() <= 12);
    }

    #[test]
    fn stats_accumulate() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        e.query(&[TermId(0)], 5);
        e.query(&[TermId(0)], 5);
        e.query(&[TermId(1)], 5);
        let s = e.stats();
        assert_eq!(s.full, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(e.cache_stats().misses, 2);
    }

    #[test]
    fn query_full_reports_latency_only_for_backend_answers() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        let first = e.query_full(&[TermId(1)], 5);
        assert_eq!(first.served, Served::Full);
        assert!(first.latency.is_some_and(|l| l > 0));
        let second = e.query_full(&[TermId(1)], 5);
        assert_eq!(second.served, Served::CacheHit);
        assert!(second.latency.is_none());
    }

    #[test]
    fn engine_is_send_sync_and_serves_from_threads() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let pi = setup();
        let e = Arc::new(DistributedEngine::new(&pi, LruCache::new(64), 2));
        assert_send_sync(&*e);
        let baseline = e.query(&[TermId(1)], 5).0;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = Arc::clone(&e);
                let baseline = baseline.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let (hits, served) = e.query(&[TermId(1)], 5);
                        assert_eq!(hits, baseline);
                        assert!(matches!(served, Served::CacheHit | Served::Full));
                    }
                });
            }
        });
        let s = e.stats();
        assert_eq!(s.cache_hits + s.full, 101);
    }

    #[test]
    fn parallel_engine_matches_sequential_engine() {
        let pi = setup();
        let seq = DistributedEngine::new(&pi, LruCache::new(16), 2);
        let par = DistributedEngine::new(&pi, LruCache::new(16), 2).with_parallelism(4);
        assert!(par.is_parallel());
        for q in 0..20u32 {
            let terms = [TermId(q % 5), TermId(50 + q % 3)];
            let a = seq.query_full(&terms, 10);
            let b = par.query_full(&terms, 10);
            assert_eq!(a.hits, b.hits, "query {q}");
            assert_eq!(a.served, b.served, "query {q}");
            assert_eq!(a.latency, b.latency, "query {q}");
        }
        assert_eq!(seq.stats(), par.stats());
    }
}
