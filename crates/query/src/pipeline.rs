//! Term-partitioned pipelined evaluation (Webber et al. \[16\]).
//!
//! "A term partitioned system using pipelining routes partially resolved
//! queries among servers" — each query visits exactly the servers holding
//! its terms, in server order, accumulating partial scores and forwarding
//! the accumulator set. The busy load therefore concentrates on the
//! servers owning popular terms, producing the imbalance of Figure 2's
//! right panel; the bin-packing and co-occurrence partitioners of
//! `dwr-partition` exist to fight exactly this.

use dwr_sim::net::{SiteId, Topology};
use dwr_sim::SimTime;
use dwr_text::index::InvertedIndex;
use dwr_text::score::Bm25;
use dwr_text::topk::TopK;
use dwr_text::TermId;
use std::collections::HashMap;

use crate::broker::{GlobalHit, US_PER_POSTING, US_PER_QUERY_FIXED};

/// Bytes per accumulator entry forwarded between pipeline stages.
pub const BYTES_PER_ACCUMULATOR: u64 = 8;
/// CPU cost (µs) a pipeline stage pays to receive and merge one forwarded
/// accumulator entry. This is the hidden tax of pipelined term
/// partitioning: every stage re-touches the accumulator set, which is why
/// Webber et al. found document partitioning "still better in terms of
/// throughput" even after load balancing.
pub const US_PER_ACCUMULATOR: f64 = 0.5;

/// Response of a pipelined query.
#[derive(Debug, Clone)]
pub struct PipelinedResponse {
    /// Merged top-k, best first (doc ids are the index's own ids, which
    /// are global in a term-partitioned system — the whole collection is
    /// indexed once and sliced by term).
    pub hits: Vec<GlobalHit>,
    /// Servers the query visited, in pipeline order.
    pub route: Vec<u32>,
    /// End-to-end latency: sum of per-stage service plus inter-stage hops.
    pub latency: SimTime,
    /// Bytes of accumulators forwarded between stages.
    pub forwarded_bytes: u64,
}

/// A term-partitioned engine with pipelined routing.
pub struct PipelinedTermEngine<'a> {
    index: &'a InvertedIndex,
    /// term -> server.
    assignment: HashMap<u32, u32>,
    servers: usize,
    topo: Topology,
    server_sites: Vec<SiteId>,
    bm25: Bm25,
    busy: Vec<f64>,
    queries: u64,
}

impl<'a> PipelinedTermEngine<'a> {
    /// Create the engine. `assignment` maps every query-relevant term to a
    /// server in `0..servers`.
    pub fn new(
        index: &'a InvertedIndex,
        assignment: HashMap<u32, u32>,
        servers: usize,
        topo: Topology,
        server_sites: Vec<SiteId>,
    ) -> Self {
        assert!(servers > 0);
        assert_eq!(server_sites.len(), servers);
        assert!(assignment.values().all(|&s| (s as usize) < servers));
        PipelinedTermEngine {
            index,
            assignment,
            servers,
            topo,
            server_sites,
            bm25: Bm25::default(),
            busy: vec![0.0; servers],
            queries: 0,
        }
    }

    /// Single-site convenience constructor.
    pub fn single_site(
        index: &'a InvertedIndex,
        assignment: HashMap<u32, u32>,
        servers: usize,
    ) -> Self {
        let sites = vec![SiteId(0); servers];
        Self::new(index, assignment, servers, Topology::single_site(), sites)
    }

    /// Evaluate a query through the pipeline.
    pub fn query(&mut self, terms: &[TermId], k: usize) -> PipelinedResponse {
        self.queries += 1;
        // Group the query's terms by owning server; visit servers in
        // ascending id order (the pipeline order).
        let mut by_server: HashMap<u32, Vec<TermId>> = HashMap::new();
        for &t in terms {
            if let Some(&s) = self.assignment.get(&t.0) {
                by_server.entry(s).or_default().push(t);
            }
        }
        let mut route: Vec<u32> = by_server.keys().copied().collect();
        route.sort_unstable();

        let mut accumulators: HashMap<u32, f32> = HashMap::new();
        let mut latency: SimTime = 0;
        let mut forwarded = 0u64;
        let mut prev_site: Option<SiteId> = None;

        for &server in &route {
            let server_terms = &by_server[&server];
            // Stage service time: postings scanned here plus the cost of
            // receiving and merging the forwarded accumulator set.
            let postings: u64 = server_terms.iter().map(|&t| u64::from(self.index.df(t))).sum();
            let merge_in = if prev_site.is_some() {
                accumulators.len() as f64 * US_PER_ACCUMULATOR
            } else {
                0.0
            };
            let service = US_PER_QUERY_FIXED + postings as f64 * US_PER_POSTING + merge_in;
            self.busy[server as usize] += service;
            latency += service as SimTime;
            // Inter-stage hop carrying the accumulator set.
            let site = self.server_sites[server as usize];
            if let Some(prev) = prev_site {
                let payload = accumulators.len() as u64 * BYTES_PER_ACCUMULATOR;
                forwarded += payload;
                latency += self.topo.transfer_time(prev, site, 64 + payload);
            }
            prev_site = Some(site);
            // Merge this server's postings into the accumulators.
            for &t in server_terms {
                if let Some(list) = self.index.postings(t) {
                    for p in list.iter() {
                        let s =
                            self.bm25.score(self.index, t, p.tf, self.index.doc_len(p.doc)) as f32;
                        *accumulators.entry(p.doc.0).or_insert(0.0) += s;
                    }
                }
            }
        }

        let mut top = TopK::new(k.max(1));
        for (doc, score) in accumulators {
            top.push(doc, score);
        }
        PipelinedResponse {
            hits: top
                .into_sorted_vec()
                .into_iter()
                .map(|(doc, score)| GlobalHit { doc, score })
                .collect(),
            route,
            latency,
            forwarded_bytes: forwarded,
        }
    }

    /// Accumulated busy time per server (µs).
    pub fn busy_time(&self) -> &[f64] {
        &self.busy
    }

    /// Busy time normalized by its mean — Figure 2's y-axis.
    pub fn busy_load_normalized(&self) -> Vec<f64> {
        let mean = self.busy.iter().sum::<f64>() / self.servers as f64;
        if mean <= 0.0 {
            return vec![0.0; self.servers];
        }
        self.busy.iter().map(|&b| b / mean).collect()
    }

    /// Queries processed so far.
    pub fn queries_processed(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_text::index::build_index;
    use dwr_text::search::search_or;

    /// Corpus with a Zipf-ish term skew: term 0 in every doc.
    fn index() -> InvertedIndex {
        let corpus: Vec<Vec<(TermId, u32)>> = (0..100usize)
            .map(|d| {
                let mut doc = vec![(TermId(0), 1)];
                for t in 1..12u32 {
                    if d % t as usize == 0 {
                        doc.push((TermId(t), 1));
                    }
                }
                doc
            })
            .collect();
        build_index(&corpus)
    }

    fn spread_assignment(servers: u32) -> HashMap<u32, u32> {
        (0..12u32).map(|t| (t, t % servers)).collect()
    }

    #[test]
    fn pipelined_results_match_monolithic() {
        let idx = index();
        let mut eng = PipelinedTermEngine::single_site(&idx, spread_assignment(4), 4);
        let terms = [TermId(2), TermId(3), TermId(5)];
        let got: Vec<u32> = eng.query(&terms, 10).hits.iter().map(|h| h.doc).collect();
        let want: Vec<u32> = search_or(&idx, &terms, 10, &Bm25::default(), &idx)
            .into_iter()
            .map(|h| h.doc.0)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn route_visits_only_owning_servers() {
        let idx = index();
        let mut eng = PipelinedTermEngine::single_site(&idx, spread_assignment(4), 4);
        let r = eng.query(&[TermId(1), TermId(5)], 10);
        // Terms 1 and 5 both live on server 1 under t % 4.
        assert_eq!(r.route, vec![1]);
        assert_eq!(r.forwarded_bytes, 0, "single-stage query forwards nothing");
        let r2 = eng.query(&[TermId(1), TermId(2)], 10);
        assert_eq!(r2.route, vec![1, 2]);
        assert!(r2.forwarded_bytes > 0);
    }

    #[test]
    fn popular_term_server_gets_hot() {
        let idx = index();
        let mut eng = PipelinedTermEngine::single_site(&idx, spread_assignment(4), 4);
        // Every query contains term 0 (server 0): the classic hot spot.
        for q in 1..50u32 {
            eng.query(&[TermId(0), TermId(1 + q % 11)], 10);
        }
        let norm = eng.busy_load_normalized();
        assert!(norm[0] > 1.5, "server 0 should be far above the mean: {norm:?}");
    }

    #[test]
    fn more_stages_more_latency() {
        let idx = index();
        // All terms on one server vs spread over 4.
        let single: HashMap<u32, u32> = (0..12u32).map(|t| (t, 0)).collect();
        let mut eng1 = PipelinedTermEngine::single_site(&idx, single, 4);
        let mut eng4 = PipelinedTermEngine::single_site(&idx, spread_assignment(4), 4);
        let terms = [TermId(1), TermId(2), TermId(3), TermId(4)];
        let l1 = eng1.query(&terms, 10).latency;
        let l4 = eng4.query(&terms, 10).latency;
        assert!(l4 > l1, "4-stage {l4} vs 1-stage {l1}");
    }

    #[test]
    fn unknown_terms_are_skipped() {
        let idx = index();
        let mut eng = PipelinedTermEngine::single_site(&idx, spread_assignment(4), 4);
        let r = eng.query(&[TermId(999)], 10);
        assert!(r.hits.is_empty());
        assert!(r.route.is_empty());
    }

    #[test]
    fn busy_time_sums_over_queries() {
        let idx = index();
        let mut eng = PipelinedTermEngine::single_site(&idx, spread_assignment(2), 2);
        eng.query(&[TermId(1)], 5);
        let after_one: f64 = eng.busy_time().iter().sum();
        eng.query(&[TermId(1)], 5);
        let after_two: f64 = eng.busy_time().iter().sum();
        assert!((after_two - 2.0 * after_one).abs() < 1e-9);
    }
}
