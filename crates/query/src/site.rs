//! Multi-site query routing.
//!
//! Section 5: queries are routed to the closest site ("a possible
//! implementation of such a feature is DNS redirection"), and "as there is
//! fluctuation in submitted queries from a particular geographic region
//! during a day, it is also possible to offload a server from a busy area
//! by re-routing some queries to query processors in less busy areas."
//!
//! The simulation works in hourly buckets: regional diurnal arrivals are
//! routed to sites under a policy, per-site utilization feeds an M/M/c
//! response-time estimate, and site outages divert traffic. Outages come
//! from materialized [`dwr_avail::site::Site`] timelines — the same
//! traces that drive the live [`crate::multisite::MultiSiteEngine`] — so
//! the analytic model and the served-query engine can be run against the
//! identical failure history.

use dwr_avail::site::Site;
use dwr_querylog::arrival::Arrival;
use dwr_queueing::mmc::MMc;
use dwr_sim::net::{SiteId, Topology};
use dwr_sim::{SimTime, HOUR, MILLISECOND};

/// One query-serving site.
#[derive(Debug, Clone, Copy)]
pub struct SiteSpec {
    /// The region this site lives in (queries from it are "local").
    pub region: u16,
    /// Server threads at the site.
    pub servers: u32,
    /// Mean service time per query, seconds.
    pub mean_service_s: f64,
}

impl SiteSpec {
    /// Site capacity in queries/second.
    pub fn capacity_qps(&self) -> f64 {
        f64::from(self.servers) / self.mean_service_s
    }
}

/// Routing policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingPolicy {
    /// Always the nearest (same-region, else topologically closest) site.
    Nearest,
    /// Nearest unless its utilization would exceed `threshold`; overflow
    /// goes to the least-utilized other site.
    LoadAware {
        /// Utilization above which traffic spills to other sites.
        threshold: f64,
    },
}

/// Per-hour, per-site results.
#[derive(Debug, Clone)]
pub struct MultiSiteReport {
    /// `load[hour][site]` = queries routed there.
    pub load: Vec<Vec<u64>>,
    /// `utilization[hour][site]` in `[0, ∞)` (>1 means overload).
    pub utilization: Vec<Vec<f64>>,
    /// Mean response time (s) per hour, averaged over queries, including
    /// the extra WAN hop for re-routed queries.
    pub mean_response: Vec<f64>,
    /// Queries re-routed away from their nearest site.
    pub rerouted: u64,
    /// Queries arriving in hours where their chosen site was overloaded
    /// (utilization ≥ 1 — the queue would grow without bound).
    pub overloaded: u64,
    /// Queries that found **no live site at all** in their hour. They are
    /// excluded from every load and response-time total — an explicit
    /// loss, not an overload. (They used to be folded into `overloaded`,
    /// which double-booked them as served-but-slow.)
    pub unserved: u64,
}

impl MultiSiteReport {
    /// Peak per-site utilization over the whole horizon.
    pub fn peak_utilization(&self) -> f64 {
        self.utilization.iter().flatten().copied().fold(0.0, f64::max)
    }
}

/// Route hourly traffic to sites and evaluate response times.
///
/// `outages` holds one materialized [`Site`] timeline per site (pass an
/// empty slice for no outages); site `s` is treated as down in an hour
/// when its trace says it was unavailable for **most** of that hour
/// (availability < 0.5 over the bucket). A down site serves nothing; its
/// traffic goes to the nearest live site, and hours where *no* site is
/// live are counted in [`MultiSiteReport::unserved`].
pub fn simulate_multisite(
    arrivals: &[Arrival],
    sites: &[SiteSpec],
    topo: &Topology,
    policy: RoutingPolicy,
    horizon: SimTime,
    outages: &[Site],
) -> MultiSiteReport {
    assert!(!sites.is_empty());
    assert_eq!(topo.sites(), sites.len());
    assert!(
        outages.is_empty() || outages.len() == sites.len(),
        "one outage trace per site, or none"
    );
    let hours = horizon.div_ceil(HOUR) as usize;

    // Bucket arrivals per (hour, region).
    let regions = usize::from(sites.iter().map(|s| s.region).max().unwrap_or(0)) + 1;
    let mut demand = vec![vec![0u64; regions]; hours];
    for a in arrivals {
        let h = (a.time / HOUR) as usize;
        if h < hours && usize::from(a.region) < regions {
            demand[h][usize::from(a.region)] += 1;
        }
    }

    // Nearest live site per region (same region preferred, else closest).
    let nearest_site = |region: u16, down: &dyn Fn(usize) -> bool| -> Option<usize> {
        let local = sites
            .iter()
            .enumerate()
            .filter(|(s, spec)| spec.region == region && !down(*s))
            .map(|(s, _)| s)
            .next();
        local.or_else(|| {
            // Closest by latency from the region's home site (site with
            // same region index, even if down, as the latency anchor).
            let anchor = sites.iter().position(|spec| spec.region == region).unwrap_or(0);
            let candidates: Vec<SiteId> =
                (0..sites.len()).filter(|&s| !down(s)).map(|s| SiteId(s as u32)).collect();
            topo.nearest(SiteId(anchor as u32), &candidates).map(|s| s.0 as usize)
        })
    };

    let mut load = vec![vec![0u64; sites.len()]; hours];
    let mut rerouted = 0u64;
    let mut overloaded = 0u64;
    let mut unserved = 0u64;
    let mut utilization = vec![vec![0f64; sites.len()]; hours];
    let mut mean_response = vec![0f64; hours];

    for h in 0..hours {
        let (hour_lo, hour_hi) = (h as SimTime * HOUR, (h as SimTime + 1) * HOUR);
        let down = |s: usize| -> bool {
            !outages.is_empty() && outages[s].availability_in(hour_lo, hour_hi) < 0.5
        };
        // First pass: nearest-site routing.
        let mut hour_load = vec![0u64; sites.len()];
        let mut origin: Vec<(usize, u64, bool)> = Vec::new(); // (site, count, was_rerouted)
        for (region, &count) in demand[h].iter().enumerate() {
            if count == 0 {
                continue;
            }
            match nearest_site(region as u16, &down) {
                Some(s) => {
                    let local = sites[s].region == region as u16;
                    hour_load[s] += count;
                    origin.push((s, count, !local));
                    if !local {
                        rerouted += count;
                    }
                }
                None => unserved += count, // no live site at all this hour
            }
        }
        // Second pass: load-aware spill.
        if let RoutingPolicy::LoadAware { threshold } = policy {
            loop {
                // Find the most overloaded site above threshold.
                let util = |s: usize, l: &[u64]| l[s] as f64 / 3600.0 / sites[s].capacity_qps();
                // total_cmp: a site with NaN capacity (degenerate spec,
                // e.g. zero servers at zero service time) yields NaN
                // utilization; the spill loop must stay deterministic
                // instead of panicking. NaN sorts above every finite
                // value, so such a site is never picked as `cool`.
                let Some(hot) = (0..sites.len())
                    .filter(|&s| !down(s) && util(s, &hour_load) > threshold)
                    .max_by(|&a, &b| util(a, &hour_load).total_cmp(&util(b, &hour_load)))
                else {
                    break;
                };
                let Some(cool) = (0..sites.len())
                    .filter(|&s| !down(s) && s != hot)
                    .min_by(|&a, &b| util(a, &hour_load).total_cmp(&util(b, &hour_load)))
                else {
                    break;
                };
                if util(cool, &hour_load) >= threshold {
                    break; // everyone is busy; nothing to gain
                }
                // Move enough traffic to bring `hot` to the threshold.
                let target = (threshold * sites[hot].capacity_qps() * 3600.0) as u64;
                let excess = hour_load[hot].saturating_sub(target);
                if excess == 0 {
                    break;
                }
                // Headroom at the cool site.
                let cool_room = ((threshold * sites[cool].capacity_qps() * 3600.0) as u64)
                    .saturating_sub(hour_load[cool]);
                let moved = excess.min(cool_room);
                if moved == 0 {
                    break;
                }
                hour_load[hot] -= moved;
                hour_load[cool] += moved;
                origin.push((cool, moved, true));
                rerouted += moved;
                // Deduct from hot's origin entries.
                let mut left = moved;
                for entry in origin.iter_mut() {
                    if entry.0 == hot && left > 0 {
                        let take = entry.1.min(left);
                        entry.1 -= take;
                        left -= take;
                    }
                }
            }
        }

        // Evaluate: utilization + response time per site.
        let mut resp_acc = 0f64;
        let mut resp_n = 0u64;
        for s in 0..sites.len() {
            load[h][s] = hour_load[s];
            let qps = hour_load[s] as f64 / 3600.0;
            let rho = qps / sites[s].capacity_qps();
            utilization[h][s] = rho;
            if hour_load[s] == 0 {
                continue;
            }
            let service = if rho < 0.99 {
                let mmc = MMc::new(qps.max(1e-9), 1.0 / sites[s].mean_service_s, sites[s].servers);
                mmc.mean_response_time()
            } else {
                overloaded += hour_load[s];
                // Saturated: report a 10× penalty rather than infinity.
                sites[s].mean_service_s * 10.0
            };
            resp_acc += service * hour_load[s] as f64;
            resp_n += hour_load[s];
        }
        // Add the WAN penalty of rerouted traffic (one extra hop, rough).
        let wan_penalty = 2.0 * (30 * MILLISECOND) as f64 / 1e6;
        let hour_rerouted: u64 = origin.iter().filter(|e| e.2).map(|e| e.1).sum();
        resp_acc += wan_penalty * hour_rerouted as f64;
        mean_response[h] = if resp_n > 0 { resp_acc / resp_n as f64 } else { 0.0 };
    }

    MultiSiteReport { load, utilization, mean_response, rerouted, overloaded, unserved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_avail::failure::DownInterval;
    use dwr_querylog::arrival::{generate_arrivals, DiurnalProfile};
    use dwr_sim::DAY;

    /// Outage traces where site `s` is down exactly over `hours[s]`
    /// (hour ranges), all over one day.
    fn traces(hours: &[std::ops::Range<u64>]) -> Vec<Site> {
        hours
            .iter()
            .map(|r| {
                if r.is_empty() {
                    Site::always_up(DAY)
                } else {
                    Site::from_down_intervals(
                        vec![DownInterval { start: r.start * HOUR, end: r.end * HOUR }],
                        DAY,
                    )
                }
            })
            .collect()
    }

    fn sites() -> Vec<SiteSpec> {
        // Small capacities keep the arrival streams cheap to materialize.
        vec![
            SiteSpec { region: 0, servers: 4, mean_service_s: 0.5 },
            SiteSpec { region: 1, servers: 4, mean_service_s: 0.5 },
            SiteSpec { region: 2, servers: 4, mean_service_s: 0.5 },
        ]
    }

    fn arrivals(mean_qps: f64) -> Vec<Arrival> {
        let profiles: Vec<DiurnalProfile> = (0..3)
            .map(|r| DiurnalProfile { mean_qps, amplitude: 0.8, phase: r as f64 / 3.0 })
            .collect();
        generate_arrivals(&profiles, DAY, 42)
    }

    #[test]
    fn nearest_routing_keeps_traffic_local() {
        let a = arrivals(1.0);
        let topo = Topology::geo_ring(3);
        let r = simulate_multisite(&a, &sites(), &topo, RoutingPolicy::Nearest, DAY, &[]);
        assert_eq!(r.rerouted, 0);
        let total: u64 = r.load.iter().flatten().sum();
        assert_eq!(total as usize, a.len());
    }

    #[test]
    fn diurnal_peaks_rotate_across_sites() {
        let a = arrivals(1.0);
        let topo = Topology::geo_ring(3);
        let r = simulate_multisite(&a, &sites(), &topo, RoutingPolicy::Nearest, DAY, &[]);
        // Each site's peak hour differs (phase-shifted demand).
        let peak_hour = |s: usize| (0..24).max_by_key(|&h| r.load[h][s]).unwrap();
        let p: Vec<usize> = (0..3).map(peak_hour).collect();
        assert!(p[0] != p[1] && p[1] != p[2], "peaks={p:?}");
    }

    #[test]
    fn load_aware_cuts_peak_utilization() {
        let a = arrivals(6.0); // hot enough to overload peaks (capacity 8 qps)
        let topo = Topology::geo_ring(3);
        let near = simulate_multisite(&a, &sites(), &topo, RoutingPolicy::Nearest, DAY, &[]);
        let aware = simulate_multisite(
            &a,
            &sites(),
            &topo,
            RoutingPolicy::LoadAware { threshold: 0.6 },
            DAY,
            &[],
        );
        assert!(aware.rerouted > 0);
        assert!(
            aware.peak_utilization() < near.peak_utilization(),
            "aware={} near={}",
            aware.peak_utilization(),
            near.peak_utilization()
        );
    }

    #[test]
    fn outage_diverts_traffic() {
        let a = arrivals(1.0);
        let topo = Topology::geo_ring(3);
        // Site 0 down for hours 6..12.
        let down = traces(&[6..12, 0..0, 0..0]);
        let r = simulate_multisite(&a, &sites(), &topo, RoutingPolicy::Nearest, DAY, &down);
        for h in 6..12 {
            assert_eq!(r.load[h][0], 0, "down site serves nothing (hour {h})");
        }
        assert!(r.rerouted > 0, "diverted traffic counts as rerouted");
        assert_eq!(r.unserved, 0, "two sites stayed live throughout");
        let total: u64 = r.load.iter().flatten().sum();
        assert_eq!(total as usize, a.len(), "everything was still served");
    }

    #[test]
    fn all_sites_down_counts_unserved_not_overloaded() {
        let a = arrivals(1.0);
        let topo = Topology::geo_ring(3);
        // Every site down for hour 6: those arrivals have nowhere to go.
        let down = traces(&[6..7, 6..7, 6..7]);
        let r = simulate_multisite(&a, &sites(), &topo, RoutingPolicy::Nearest, DAY, &down);
        let lost = a.iter().filter(|q| (q.time / HOUR) == 6).count() as u64;
        assert!(lost > 0, "the fixture has traffic in hour 6");
        assert_eq!(r.unserved, lost, "exactly the dead hour's arrivals are unserved");
        assert_eq!(r.overloaded, 0, "lost queries are not misfiled as overload");
        let total: u64 = r.load.iter().flatten().sum();
        assert_eq!(total + r.unserved, a.len() as u64, "load totals exclude the lost hour");
        assert_eq!(r.load[6], vec![0, 0, 0]);
    }

    #[test]
    fn partial_hour_outage_rounds_to_majority() {
        let a = arrivals(1.0);
        let topo = Topology::geo_ring(3);
        // Site 0 down 20 minutes of hour 3 (stays up for the bucket) and
        // 40 minutes of hour 8 (counts as down for the bucket).
        let down = vec![
            Site::from_down_intervals(
                vec![
                    DownInterval { start: 3 * HOUR, end: 3 * HOUR + 20 * dwr_sim::MINUTE },
                    DownInterval { start: 8 * HOUR, end: 8 * HOUR + 40 * dwr_sim::MINUTE },
                ],
                DAY,
            ),
            Site::always_up(DAY),
            Site::always_up(DAY),
        ];
        let r = simulate_multisite(&a, &sites(), &topo, RoutingPolicy::Nearest, DAY, &down);
        assert!(r.load[3][0] > 0, "minor blip does not kill the hour");
        assert_eq!(r.load[8][0], 0, "majority-down hour serves nothing");
    }

    #[test]
    fn nan_capacity_does_not_panic_load_aware_spill() {
        // Regression: a degenerate site spec (0 servers, 0 service time)
        // has NaN capacity, so its utilization is NaN; the load-aware
        // spill loop compared utilizations with partial_cmp().expect and
        // panicked. total_cmp keeps the pass deterministic: the NaN site
        // sorts above every finite utilization and is never chosen as the
        // spill target.
        let degenerate = vec![
            SiteSpec { region: 0, servers: 4, mean_service_s: 0.5 },
            SiteSpec { region: 1, servers: 4, mean_service_s: 0.5 },
            SiteSpec { region: 2, servers: 0, mean_service_s: 0.0 },
        ];
        let a = arrivals(6.0); // hot enough to trigger spilling
        let topo = Topology::geo_ring(3);
        let r = simulate_multisite(
            &a,
            &degenerate,
            &topo,
            RoutingPolicy::LoadAware { threshold: 0.6 },
            DAY,
            &[],
        );
        let total: u64 = r.load.iter().flatten().sum();
        assert_eq!(total + r.unserved, a.len() as u64, "no query vanished");
    }

    #[test]
    fn response_time_grows_with_load() {
        let topo = Topology::geo_ring(3);
        let light =
            simulate_multisite(&arrivals(0.5), &sites(), &topo, RoutingPolicy::Nearest, DAY, &[]);
        let heavy =
            simulate_multisite(&arrivals(7.0), &sites(), &topo, RoutingPolicy::Nearest, DAY, &[]);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&heavy.mean_response) > mean(&light.mean_response));
    }
}
