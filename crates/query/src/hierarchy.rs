//! Hierarchical coordinator merging.
//!
//! "The coordinator may become a bottleneck while merging the results from
//! a great number of query processors. In such a case, it is possible to
//! use a hierarchy of coordinators to mitigate this problem" (Section 5,
//! communication). This module models both topologies over the same
//! per-partition results: a flat coordinator that merges all `n` result
//! lists itself, and a `fanout`-ary merge tree whose root only merges
//! `fanout` pre-merged lists.

use crate::broker::{GlobalHit, US_PER_MERGE_HIT};
use dwr_sim::net::Link;
use dwr_sim::SimTime;
use dwr_text::topk::TopK;

/// Result of merging through a coordinator topology.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged top-k.
    pub hits: Vec<GlobalHit>,
    /// CPU time (µs) spent by the *root* coordinator — its saturation
    /// point determines system throughput.
    pub root_cpu_us: u64,
    /// End-to-end merge latency (µs), network hops included.
    pub latency: SimTime,
    /// Total CPU across all coordinators (the efficiency price of the
    /// tree: inner nodes re-merge).
    pub total_cpu_us: u64,
    /// Coordinators involved.
    pub coordinators: usize,
}

fn merge_lists(lists: &[Vec<GlobalHit>], k: usize) -> (Vec<GlobalHit>, u64) {
    let mut top = TopK::new(k.max(1));
    let mut cpu = 0u64;
    for l in lists {
        cpu += l.len() as u64 * US_PER_MERGE_HIT as u64;
        for h in l {
            top.push(h.doc, h.score);
        }
    }
    let hits =
        top.into_sorted_vec().into_iter().map(|(doc, score)| GlobalHit { doc, score }).collect();
    (hits, cpu)
}

/// Flat merge: one coordinator consumes every partition's list.
pub fn flat_merge(per_partition: &[Vec<GlobalHit>], k: usize, link: Link) -> MergeOutcome {
    let (hits, cpu) = merge_lists(per_partition, k);
    // All lists arrive in parallel; latency = slowest transfer + merge CPU.
    let max_transfer =
        per_partition.iter().map(|l| link.transfer_time(l.len() as u64 * 12)).max().unwrap_or(0);
    MergeOutcome {
        hits,
        root_cpu_us: cpu,
        latency: max_transfer + cpu,
        total_cpu_us: cpu,
        coordinators: 1,
    }
}

/// Tree merge: leaves are partitions; inner coordinators merge `fanout`
/// children each; the root merges the last `<= fanout` lists.
pub fn tree_merge(
    per_partition: &[Vec<GlobalHit>],
    k: usize,
    fanout: usize,
    link: Link,
) -> MergeOutcome {
    assert!(fanout >= 2, "a merge tree needs fanout >= 2");
    if per_partition.len() <= 1 {
        // Degenerate tree: the root canonicalizes the single list.
        let (hits, cpu) = merge_lists(per_partition, k);
        return MergeOutcome {
            hits,
            root_cpu_us: cpu,
            latency: cpu,
            total_cpu_us: cpu,
            coordinators: 1,
        };
    }
    let mut level: Vec<Vec<GlobalHit>> = per_partition.to_vec();
    let mut total_cpu = 0u64;
    let mut latency: SimTime = 0;
    let mut coordinators = 0usize;
    let mut root_cpu = 0u64;
    while level.len() > 1 {
        let mut next: Vec<Vec<GlobalHit>> = Vec::with_capacity(level.len().div_ceil(fanout));
        let mut level_latency: SimTime = 0;
        let mut level_max_cpu = 0u64;
        for group in level.chunks(fanout) {
            coordinators += 1;
            let (merged, cpu) = merge_lists(group, k);
            total_cpu += cpu;
            level_max_cpu = level_max_cpu.max(cpu);
            let transfer =
                group.iter().map(|l| link.transfer_time(l.len() as u64 * 12)).max().unwrap_or(0);
            level_latency = level_latency.max(transfer + cpu);
            next.push(merged);
        }
        root_cpu = level_max_cpu; // the last level's max is the root's work
        latency += level_latency;
        level = next;
    }
    MergeOutcome {
        hits: level.pop().unwrap_or_default(),
        root_cpu_us: root_cpu,
        latency,
        total_cpu_us: total_cpu,
        coordinators,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partitions(n: usize, per: usize) -> Vec<Vec<GlobalHit>> {
        (0..n)
            .map(|p| {
                (0..per)
                    .map(|i| GlobalHit {
                        doc: (p * per + i) as u32,
                        score: ((p * 31 + i * 17) % 97) as f32,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn flat_and_tree_produce_identical_topk() {
        let parts = partitions(16, 10);
        let flat = flat_merge(&parts, 10, Link::lan());
        for fanout in [2, 3, 4, 8] {
            let tree = tree_merge(&parts, 10, fanout, Link::lan());
            assert_eq!(tree.hits, flat.hits, "fanout {fanout}");
        }
    }

    #[test]
    fn tree_cuts_root_cpu() {
        let parts = partitions(64, 10);
        let flat = flat_merge(&parts, 10, Link::lan());
        let tree = tree_merge(&parts, 10, 4, Link::lan());
        // Root merges 4 lists of <= 10 instead of 64 lists of 10.
        assert!(
            tree.root_cpu_us * 4 < flat.root_cpu_us,
            "tree root {} vs flat {}",
            tree.root_cpu_us,
            flat.root_cpu_us
        );
    }

    #[test]
    fn tree_costs_more_total_cpu() {
        let parts = partitions(64, 10);
        let flat = flat_merge(&parts, 10, Link::lan());
        let tree = tree_merge(&parts, 10, 4, Link::lan());
        assert!(tree.total_cpu_us > flat.total_cpu_us);
        assert!(tree.coordinators > 1);
    }

    #[test]
    fn tree_latency_has_depth_but_wan_flat_suffers_width() {
        // On a LAN the extra levels cost latency; the win is throughput
        // (root CPU), not latency.
        let parts = partitions(64, 10);
        let flat = flat_merge(&parts, 10, Link::lan());
        let tree = tree_merge(&parts, 10, 2, Link::lan());
        assert!(tree.latency >= flat.latency);
    }

    #[test]
    fn single_partition_trivial() {
        let parts = partitions(1, 5);
        let flat = flat_merge(&parts, 10, Link::lan());
        let tree = tree_merge(&parts, 10, 2, Link::lan());
        assert_eq!(flat.hits, tree.hits);
        assert_eq!(tree.coordinators, 1, "just the root");
    }

    #[test]
    fn empty_input() {
        let out = flat_merge(&[], 10, Link::lan());
        assert!(out.hits.is_empty());
    }
}
