//! Property-based tests of query-layer invariants: cache bounds, replica
//! dispatch, and key stability.

use dwr_query::cache::{LfuCache, LruCache, ResultCache, SdcCache};
use dwr_query::engine::query_key;
use dwr_query::replica::{PrimaryBackupStore, ReplicaGroup};
use dwr_text::TermId;
use proptest::prelude::*;

proptest! {
    /// No cache ever holds more than its capacity.
    #[test]
    fn caches_respect_capacity(
        cap in 2usize..64,
        keys in prop::collection::vec(0u64..1000, 0..300)
    ) {
        let static_keys: Vec<u64> = (0..cap as u64 / 2).collect();
        let mut caches: Vec<Box<dyn ResultCache>> = vec![
            Box::new(LruCache::new(cap)),
            Box::new(LfuCache::new(cap)),
            Box::new(SdcCache::new(cap, 0.5, &static_keys)),
        ];
        for c in &mut caches {
            for &k in &keys {
                if c.get(k).is_none() {
                    c.put(k, Vec::new());
                }
                prop_assert!(c.len() <= cap, "{} over capacity", c.name());
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, keys.len() as u64, "{}", c.name());
        }
    }

    /// LRU always retains the most recently inserted key.
    #[test]
    fn lru_keeps_most_recent(cap in 1usize..32, keys in prop::collection::vec(0u64..100, 1..200)) {
        let mut c = LruCache::new(cap);
        for &k in &keys {
            c.put(k, Vec::new());
            prop_assert!(c.get(k).is_some(), "most recent key evicted");
        }
    }

    /// The query cache key is order- and duplication-insensitive in the
    /// ways a term multiset should be (sorted canonical form).
    #[test]
    fn query_key_order_insensitive(mut terms in prop::collection::vec(0u32..10_000, 1..8), seed in any::<u64>()) {
        let ids: Vec<TermId> = terms.iter().map(|&t| TermId(t)).collect();
        let k1 = query_key(&ids);
        // Shuffle deterministically.
        let mut rng = dwr_sim::SimRng::new(seed);
        rng.shuffle(&mut terms);
        let ids2: Vec<TermId> = terms.iter().map(|&t| TermId(t)).collect();
        prop_assert_eq!(k1, query_key(&ids2));
    }

    /// Replica dispatch only ever selects live replicas, and balances
    /// round-robin across them.
    #[test]
    fn dispatch_targets_live_replicas(r in 1usize..8, dead_mask in any::<u8>(), n in 1usize..100) {
        let mut g = ReplicaGroup::new(r);
        for i in 0..r {
            if dead_mask & (1 << i) != 0 {
                g.set_alive(i, false);
            }
        }
        let live: Vec<usize> = (0..r).filter(|&i| dead_mask & (1 << i) == 0).collect();
        let mut counts = vec![0u64; r];
        for _ in 0..n {
            match g.dispatch() {
                Some(chosen) => {
                    prop_assert!(live.contains(&chosen));
                    counts[chosen] += 1;
                }
                None => prop_assert!(live.is_empty()),
            }
        }
        if !live.is_empty() {
            let max = counts.iter().max().unwrap();
            let min = live.iter().map(|&i| counts[i]).min().unwrap();
            prop_assert!(max - min <= 1, "round-robin drift: {counts:?}");
        }
    }

    /// Primary-backup: any acknowledged write survives any single crash.
    #[test]
    fn acked_writes_durable(
        writes in prop::collection::vec((0u64..20, any::<u64>()), 1..40),
        crash_victim in 0usize..3
    ) {
        let mut s = PrimaryBackupStore::new(2);
        let mut expected = std::collections::HashMap::new();
        for &(k, v) in &writes {
            if s.put(k, v).is_some() {
                expected.insert(k, v);
            }
        }
        s.crash(crash_victim);
        for (&k, &v) in &expected {
            prop_assert_eq!(s.get(k), Some(v), "lost acknowledged write {}", k);
        }
    }
}
