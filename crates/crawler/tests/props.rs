//! Property-based tests of crawler invariants: consistent-hash
//! monotonicity and the frontier's politeness guarantees.

use dwr_crawler::assign::{AgentId, ConsistentHashAssigner, HashAssigner, UrlAssigner};
use dwr_crawler::frontier::Frontier;
use dwr_sim::SECOND;
use dwr_webgraph::generate::{generate_web, WebConfig};
use dwr_webgraph::graph::{HostId, PageId};
use proptest::prelude::*;
use std::collections::HashSet;

fn tiny_web() -> dwr_webgraph::SyntheticWeb {
    let mut cfg = WebConfig::tiny();
    cfg.num_pages = 300;
    cfg.num_hosts = 60;
    generate_web(&cfg, 424242)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Removing an agent from a consistent-hash ring moves only hosts the
    /// removed agent owned (no collateral reshuffling).
    #[test]
    fn consistent_hash_remove_is_minimal(agents in 2u32..12, victim_ix in 0u32..12, replicas in 1u32..64) {
        let victim = AgentId(victim_ix % agents);
        let web = tiny_web();
        let before = ConsistentHashAssigner::new(agents, replicas);
        let mut after = before.clone();
        after.remove_agent(victim);
        for h in web.host_ids() {
            let b = before.agent_for(h, &web);
            let a = after.agent_for(h, &web);
            if b != victim {
                prop_assert_eq!(a, b, "host {:?} moved without cause", h);
            } else {
                prop_assert_ne!(a, victim);
            }
        }
    }

    /// Adding an agent moves hosts only *to* the new agent (monotone).
    #[test]
    fn consistent_hash_add_is_monotone(agents in 1u32..12, replicas in 1u32..64) {
        let web = tiny_web();
        let before = ConsistentHashAssigner::new(agents, replicas);
        let mut after = before.clone();
        let newcomer = AgentId(agents);
        after.add_agent(newcomer);
        for h in web.host_ids() {
            let b = before.agent_for(h, &web);
            let a = after.agent_for(h, &web);
            prop_assert!(a == b || a == newcomer);
        }
    }

    /// Every assigner maps every host to a live agent.
    #[test]
    fn assignments_are_total(agents in 1u32..12) {
        let web = tiny_web();
        let assigners: Vec<Box<dyn UrlAssigner>> = vec![
            Box::new(HashAssigner::new(agents)),
            Box::new(ConsistentHashAssigner::new(agents, 32)),
        ];
        for a in &assigners {
            let live: HashSet<AgentId> = a.agents().into_iter().collect();
            for h in web.host_ids() {
                prop_assert!(live.contains(&a.agent_for(h, &web)));
            }
        }
    }

    /// Frontier politeness: replaying an arbitrary offer/fetch/complete
    /// schedule never yields two concurrent fetches for one host, and
    /// consecutive fetches of a host are separated by the politeness delay.
    #[test]
    fn frontier_politeness_invariant(ops in prop::collection::vec((0u32..8, 0u32..50), 1..200)) {
        let delay = 2 * SECOND;
        let mut f = Frontier::new(delay);
        let mut now = 0u64;
        let mut in_flight: HashSet<HostId> = HashSet::new();
        let mut last_done: std::collections::HashMap<HostId, u64> = std::collections::HashMap::new();
        for (host, page) in ops {
            let host = HostId(host);
            f.offer(host, PageId(page), now);
            now += SECOND / 4;
            // Try to fetch as much as is allowed right now.
            while let Ok((h, _)) = f.next_fetch(now) {
                prop_assert!(!in_flight.contains(&h), "two concurrent fetches on {h:?}");
                if let Some(&done) = last_done.get(&h) {
                    prop_assert!(now >= done + delay, "politeness violated on {h:?}");
                }
                in_flight.insert(h);
                // Complete immediately at `now`.
                f.complete(h, now);
                in_flight.remove(&h);
                last_done.insert(h, now);
            }
        }
    }

    /// The frontier never loses or duplicates work: offered distinct pages
    /// = fetched + still pending.
    #[test]
    fn frontier_conserves_work(pages in prop::collection::btree_set((0u32..8, 0u32..1000), 0..100)) {
        let mut f = Frontier::new(0);
        let mut offered = 0usize;
        for &(h, p) in &pages {
            if f.offer(HostId(h), PageId(p), 0) {
                offered += 1;
            }
        }
        let mut fetched = 0usize;
        let mut now = 0;
        loop {
            match f.next_fetch(now) {
                Ok((h, _)) => {
                    fetched += 1;
                    f.complete(h, now);
                }
                Err(Some(t)) => now = t,
                Err(None) => break,
            }
        }
        prop_assert_eq!(fetched, offered);
        prop_assert_eq!(f.pending(), 0);
    }
}
