//! Frontier prioritization: fetch high-quality pages first.
//!
//! Section 2: a crawler should "prioritize high-quality objects"; Section 6
//! lists "how to efficiently prioritize the crawling frontier under a
//! dynamic scenario" as an open problem. The classic online signal is the
//! number of *discovered* in-links (an online approximation of in-degree /
//! PageRank mass): pages cited by many already-crawled pages are fetched
//! before freshly-discovered tail pages.
//!
//! [`PriorityFrontier`] wraps the politeness machinery of
//! [`Frontier`](crate::frontier::Frontier)'s design with per-host priority
//! queues keyed by a dynamic citation count, and
//! [`evaluate_crawl_ordering`] measures what prioritization buys: the mean
//! in-degree of the first `x%` of fetches.

use dwr_sim::SimTime;
use dwr_webgraph::graph::{HostId, PageId};
use dwr_webgraph::SyntheticWeb;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A politeness-respecting frontier whose per-host queues are priority
/// queues over a dynamic citation count.
#[derive(Debug)]
pub struct PriorityFrontier {
    /// Per-host max-heap of (citations, Reverse(page)) — more-cited first,
    /// lower id on ties.
    queues: HashMap<HostId, BinaryHeap<(u32, Reverse<u32>)>>,
    /// Citation counts of queued pages (updated by `cite`).
    citations: HashMap<PageId, u32>,
    /// Ready hosts ordered by (eligible time, best queued citation count
    /// DESC, host id): among simultaneously eligible hosts, the one
    /// holding the hottest page is fetched first.
    ready: BinaryHeap<Reverse<(SimTime, Reverse<u32>, u32)>>,
    busy: HashSet<HostId>,
    next_allowed: HashMap<HostId, SimTime>,
    seen: HashSet<PageId>,
    politeness_delay: SimTime,
    pending: usize,
}

impl PriorityFrontier {
    /// Create with the given politeness delay.
    pub fn new(politeness_delay: SimTime) -> Self {
        PriorityFrontier {
            queues: HashMap::new(),
            citations: HashMap::new(),
            ready: BinaryHeap::new(),
            busy: HashSet::new(),
            next_allowed: HashMap::new(),
            seen: HashSet::new(),
            politeness_delay,
            pending: 0,
        }
    }

    /// Offer a page; returns whether it was fresh. Re-offering a known
    /// page instead *cites* it (bumping its priority if still queued).
    pub fn offer(&mut self, host: HostId, page: PageId, now: SimTime) -> bool {
        if !self.seen.insert(page) {
            self.cite(host, page);
            return false;
        }
        self.citations.insert(page, 1);
        let q = self.queues.entry(host).or_default();
        q.push((1, Reverse(page.0)));
        self.pending += 1;
        if !self.busy.contains(&host) {
            let at = self.next_allowed.get(&host).copied().unwrap_or(0).max(now);
            let best = q.peek().map_or(1, |&(c, _)| c);
            self.ready.push(Reverse((at, Reverse(best), host.0)));
        }
        true
    }

    /// Record one more citation of a queued page (stale heap entries are
    /// filtered at pop time).
    pub fn cite(&mut self, host: HostId, page: PageId) {
        if let Some(c) = self.citations.get_mut(&page) {
            *c += 1;
            let count = *c;
            if let Some(q) = self.queues.get_mut(&host) {
                q.push((count, Reverse(page.0)));
                // Refresh the host's ready entry so a hot discovery can
                // promote its host (stale entries are filtered at pop).
                if !self.busy.contains(&host) {
                    let at = self.next_allowed.get(&host).copied().unwrap_or(0);
                    self.ready.push(Reverse((at, Reverse(count), host.0)));
                }
            }
        }
    }

    /// Number of pending pages.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Pop the best fetchable page at `now` (same contract as
    /// `Frontier::next_fetch`).
    pub fn next_fetch(&mut self, now: SimTime) -> Result<(HostId, PageId), Option<SimTime>> {
        loop {
            let Some(&Reverse((at, _, host_raw))) = self.ready.peek() else {
                return Err(None);
            };
            let host = HostId(host_raw);
            let valid =
                !self.busy.contains(&host) && self.queues.get(&host).is_some_and(|q| !q.is_empty());
            if !valid {
                self.ready.pop();
                continue;
            }
            if at > now {
                return Err(Some(at));
            }
            self.ready.pop();
            let q = self.queues.get_mut(&host).expect("validated above");
            // Skip stale entries: an entry is live iff its count matches
            // the page's current citation count AND the page is still
            // queued (citations map holds queued pages only).
            let page = loop {
                let Some((count, Reverse(p))) = q.pop() else {
                    // Everything was stale; host has nothing left.
                    break None;
                };
                let page = PageId(p);
                match self.citations.get(&page) {
                    Some(&c) if c == count => break Some(page),
                    _ => continue, // superseded or dequeued entry
                }
            };
            let Some(page) = page else { continue };
            self.citations.remove(&page);
            self.pending -= 1;
            self.busy.insert(host);
            return Ok((host, page));
        }
    }

    /// Complete a fetch, starting the politeness interval.
    pub fn complete(&mut self, host: HostId, now: SimTime) {
        let was_busy = self.busy.remove(&host);
        assert!(was_busy, "complete() for a host that was not busy");
        let at = now + self.politeness_delay;
        self.next_allowed.insert(host, at);
        if let Some(q) = self.queues.get(&host) {
            if !q.is_empty() {
                let best = q.peek().map_or(1, |&(c, _)| c);
                self.ready.push(Reverse((at, Reverse(best), host.0)));
            }
        }
    }
}

/// Crawl-ordering quality: run a single-agent crawl in fetch order (no
/// timing, pure ordering) with and without prioritization, and report the
/// mean *true* in-degree of the first `prefix_fraction` of fetched pages.
pub fn evaluate_crawl_ordering(
    web: &SyntheticWeb,
    seeds: usize,
    prefix_fraction: f64,
) -> OrderingReport {
    assert!((0.0..=1.0).contains(&prefix_fraction));
    let deg = web.in_degrees();
    let run = |prioritized: bool| -> Vec<PageId> {
        let mut order = Vec::new();
        // FIFO baseline reuses the priority frontier with citation
        // bumping disabled (every page keeps count 1 → id order within a
        // host; host rotation identical in both runs).
        let mut f = PriorityFrontier::new(0);
        for h in 0..seeds.min(web.num_hosts()) {
            let p = web.pages_of_host(HostId(h as u32))[0];
            f.offer(web.page(p).host, p, 0);
        }
        let mut now = 0;
        loop {
            match f.next_fetch(now) {
                Ok((host, page)) => {
                    order.push(page);
                    for &t in web.outlinks(page) {
                        let th = web.page(t).host;
                        if prioritized {
                            f.offer(th, t, now); // re-offers cite
                        } else if !f.seen.contains(&t) {
                            f.offer(th, t, now);
                        }
                    }
                    f.complete(host, now);
                }
                Err(Some(t)) => now = t,
                Err(None) => break,
            }
        }
        order
    };
    let fifo = run(false);
    let prio = run(true);
    let mean_prefix = |order: &[PageId]| -> f64 {
        let k = ((order.len() as f64 * prefix_fraction) as usize).max(1);
        order.iter().take(k).map(|p| f64::from(deg[p.0 as usize])).sum::<f64>() / k as f64
    };
    // The Cho/Garcia-Molina/Page metric: how early are the *hot* pages
    // (true top-100 by in-degree) fetched? Mean normalized fetch position,
    // 0 = first fetch, 1 = last (or never fetched).
    let hot: Vec<u32> = {
        let mut ids: Vec<u32> = (0..web.num_pages() as u32).collect();
        ids.sort_by_key(|&i| (Reverse(deg[i as usize]), i));
        ids.truncate(100);
        ids
    };
    let mean_hot_position = |order: &[PageId]| -> f64 {
        let pos: HashMap<u32, usize> = order.iter().enumerate().map(|(i, p)| (p.0, i)).collect();
        let n = order.len().max(1) as f64;
        hot.iter().map(|id| pos.get(id).map_or(1.0, |&i| i as f64 / n)).sum::<f64>()
            / hot.len() as f64
    };
    OrderingReport {
        fetched: fifo.len(),
        fifo_prefix_indegree: mean_prefix(&fifo),
        prioritized_prefix_indegree: mean_prefix(&prio),
        fifo_hot_position: mean_hot_position(&fifo),
        prioritized_hot_position: mean_hot_position(&prio),
    }
}

/// Result of [`evaluate_crawl_ordering`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderingReport {
    /// Pages fetched by both runs (identical coverage).
    pub fetched: usize,
    /// Mean true in-degree of the FIFO run's prefix.
    pub fifo_prefix_indegree: f64,
    /// Mean true in-degree of the prioritized run's prefix.
    pub prioritized_prefix_indegree: f64,
    /// Mean normalized fetch position of the true top-100 pages, FIFO.
    pub fifo_hot_position: f64,
    /// Same under prioritization (smaller = hot pages fetched earlier).
    pub prioritized_hot_position: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_webgraph::generate::{generate_web, WebConfig};

    const H: HostId = HostId(1);

    #[test]
    fn pops_highest_cited_first() {
        let mut f = PriorityFrontier::new(0);
        f.offer(H, PageId(10), 0);
        f.offer(H, PageId(20), 0);
        f.offer(H, PageId(30), 0);
        // Cite page 30 twice.
        f.offer(H, PageId(30), 0);
        f.offer(H, PageId(30), 0);
        let (_, p) = f.next_fetch(0).unwrap();
        assert_eq!(p, PageId(30));
        f.complete(H, 0);
        // Remaining tie broken by lower id.
        let (_, p2) = f.next_fetch(0).unwrap();
        assert_eq!(p2, PageId(10));
    }

    #[test]
    fn politeness_still_enforced() {
        let mut f = PriorityFrontier::new(100);
        f.offer(H, PageId(1), 0);
        f.offer(H, PageId(2), 0);
        let _ = f.next_fetch(0).unwrap();
        assert_eq!(f.next_fetch(0), Err(None), "host busy");
        f.complete(H, 50);
        assert_eq!(f.next_fetch(50), Err(Some(150)));
        assert!(f.next_fetch(150).is_ok());
    }

    #[test]
    fn pending_is_conserved() {
        let mut f = PriorityFrontier::new(0);
        for i in 0..10u32 {
            f.offer(H, PageId(i), 0);
            f.offer(H, PageId(i), 0); // duplicate cites, not enqueues
        }
        assert_eq!(f.pending(), 10);
        let mut got = 0;
        let mut now = 0;
        loop {
            match f.next_fetch(now) {
                Ok((h, _)) => {
                    got += 1;
                    f.complete(h, now);
                }
                Err(Some(t)) => now = t,
                Err(None) => break,
            }
        }
        assert_eq!(got, 10);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn prioritization_front_loads_high_indegree_pages() {
        let web = generate_web(&WebConfig::tiny(), 99);
        let r = evaluate_crawl_ordering(&web, 8, 0.2);
        assert!(r.fetched > 500);
        // Prefix quality improves (weak metric)...
        assert!(
            r.prioritized_prefix_indegree > r.fifo_prefix_indegree,
            "prio={} fifo={}",
            r.prioritized_prefix_indegree,
            r.fifo_prefix_indegree
        );
        // ...and the hot pages arrive distinctly earlier (the Cho et al.
        // metric, where backlink ordering shows its value).
        assert!(
            r.prioritized_hot_position < 0.8 * r.fifo_hot_position,
            "prio={} fifo={}",
            r.prioritized_hot_position,
            r.fifo_hot_position
        );
    }

    #[test]
    fn both_orderings_cover_the_same_set() {
        let web = generate_web(&WebConfig::tiny(), 101);
        let r = evaluate_crawl_ordering(&web, 4, 1.0);
        // prefix = 100%: identical coverage means identical mean degree.
        assert!((r.fifo_prefix_indegree - r.prioritized_prefix_indegree).abs() < 1e-9);
    }
}
