//! Crawl-time fault injection: materialized churn schedules for the
//! agent pool.
//!
//! Section 3's dependability row is about *agents*, not servers: "the
//! consistent hashing scheme of UbiCrawler \[6\] exists precisely so
//! that new agents enter the crawling system without re-hashing all the
//! server names." That claim is only testable if agents actually come
//! and go. An [`AgentSchedule`] materializes one [`DownInterval`]
//! sequence per agent from an [`UpDownProcess`] renewal model — the
//! crawl-tier mirror of `dwr-query::faults::FaultSchedule` — and
//! [`DistributedCrawl`](crate::sim::DistributedCrawl) consumes its
//! [`transitions`](AgentSchedule::transitions) as crash and recovery
//! events in the simulation's event loop: on each pool change the live
//! `UrlAssigner` is updated, affected hosts are re-routed, and the
//! departing agent's frontier state is handed off to the new owners.
//!
//! Schedules are deterministic and **dimension-stable**: the intervals
//! of agent *a* depend only on the seed, the process parameters, and
//! the label `a` — never on how many other agents exist. A schedule
//! generated for `n + 1` agents is therefore the `n`-agent schedule
//! plus one extra independent agent, which keeps fleet-size sweeps
//! comparable row to row.

use crate::assign::AgentId;
use dwr_avail::failure::{DownInterval, UpDownProcess};
use dwr_sim::{SimRng, SimTime};

/// One membership event of a churn schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// When the event fires.
    pub at: SimTime,
    /// The agent that changes state.
    pub agent: AgentId,
    /// `true` = the agent crashes; `false` = it recovers.
    pub down: bool,
}

/// Per-agent outage intervals over a fixed horizon — the crawl tier's
/// churn script.
#[derive(Debug, Clone)]
pub struct AgentSchedule {
    horizon: SimTime,
    /// `outages[agent]`: sorted, non-overlapping down intervals.
    outages: Vec<Vec<DownInterval>>,
}

impl AgentSchedule {
    /// Materialize a schedule of `agents` independent up-down processes
    /// over `[0, horizon)`.
    pub fn generate(agents: usize, process: &UpDownProcess, horizon: SimTime, seed: u64) -> Self {
        assert!(horizon > 0);
        let root = SimRng::new(seed);
        let outages = (0..agents)
            .map(|a| {
                // Label-forked: agent a's stream is independent of the
                // schedule's dimensions (same trick as the query tier's
                // FaultSchedule and site_outage_traces).
                let mut rng = root.fork(0xC8A4_0000 | a as u64);
                process.down_intervals(horizon, &mut rng)
            })
            .collect();
        AgentSchedule { horizon, outages }
    }

    /// Build a schedule from hand-placed intervals (tests, replayed
    /// traces). `outages[a]` must be sorted and non-overlapping.
    pub fn from_intervals(outages: Vec<Vec<DownInterval>>, horizon: SimTime) -> Self {
        assert!(horizon > 0);
        debug_assert!(outages.iter().all(|ivs| ivs.windows(2).all(|w| w[0].end <= w[1].start)));
        AgentSchedule { horizon, outages }
    }

    /// The legacy `CrawlConfig::crash` scenario as a schedule: `agent`
    /// dies at `at` and never recovers. This is how the deprecated
    /// scripted-crash field is lowered internally, so the two paths
    /// share one implementation.
    pub fn single_crash(agents: usize, agent: AgentId, at: SimTime) -> Self {
        let horizon = SimTime::MAX;
        let outages = (0..agents as u32)
            .map(|a| {
                if a == agent.0 {
                    vec![DownInterval { start: at, end: horizon }]
                } else {
                    Vec::new()
                }
            })
            .collect();
        AgentSchedule { horizon, outages }
    }

    /// The schedule's time horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of agents covered.
    pub fn num_agents(&self) -> usize {
        self.outages.len()
    }

    /// The sorted outage intervals of agent `a` (empty for agents
    /// outside the schedule).
    pub fn intervals(&self, a: usize) -> &[DownInterval] {
        self.outages.get(a).map_or(&[], Vec::as_slice)
    }

    /// Whether agent `a` is down at instant `t`. Agents outside the
    /// schedule are always up.
    pub fn is_down(&self, a: usize, t: SimTime) -> bool {
        let ivs = self.intervals(a);
        let idx = ivs.partition_point(|iv| iv.start <= t);
        idx > 0 && ivs[idx - 1].contains(t)
    }

    /// Total downtime of agent `a` over the horizon.
    pub fn downtime(&self, a: usize) -> SimTime {
        self.intervals(a).iter().map(DownInterval::duration).sum()
    }

    /// Every membership event in time order. Crashes sort before
    /// recoveries at equal instants, so the concurrent-liveness count
    /// computed by sweeping this list is conservative.
    pub fn transitions(&self) -> Vec<Transition> {
        let mut out = Vec::new();
        for (a, ivs) in self.outages.iter().enumerate() {
            let agent = AgentId(a as u32);
            for iv in ivs {
                out.push(Transition { at: iv.start, agent, down: true });
                if iv.end < self.horizon {
                    out.push(Transition { at: iv.end, agent, down: false });
                }
            }
        }
        out.sort_unstable_by_key(|t| (t.at, !t.down, t.agent));
        out
    }

    /// Number of membership events (crashes + recoveries) the schedule
    /// scripts.
    pub fn membership_changes(&self) -> u64 {
        self.transitions().len() as u64
    }

    /// The minimum number of concurrently live agents over the whole
    /// horizon, for a pool of `agents` (agents beyond the schedule are
    /// always up). Schedules used in coverage tests should keep this
    /// ≥ 1 — the simulator refuses to kill the last live agent, which
    /// would distort a schedule that tried.
    pub fn min_live(&self, agents: usize) -> usize {
        let mut live = agents as i64 - (0..agents).filter(|&a| self.is_down(a, 0)).count() as i64;
        let mut min = live;
        for t in self.transitions() {
            if (t.agent.0 as usize) >= agents {
                continue;
            }
            if t.at == 0 {
                continue; // already folded into the starting count
            }
            live += if t.down { -1 } else { 1 };
            min = min.min(live);
        }
        min.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_sim::{HOUR, MINUTE, SECOND};

    fn iv(start: SimTime, end: SimTime) -> DownInterval {
        DownInterval { start, end }
    }

    #[test]
    fn is_down_follows_intervals() {
        let s = AgentSchedule::from_intervals(vec![vec![iv(10, 20), iv(40, 50)], vec![]], 100);
        assert!(!s.is_down(0, 9));
        assert!(s.is_down(0, 10));
        assert!(s.is_down(0, 19));
        assert!(!s.is_down(0, 20));
        assert!(s.is_down(0, 45));
        assert!(!s.is_down(1, 45), "agent with no outages is up");
        assert!(!s.is_down(7, 45), "agent outside the schedule is up");
        assert_eq!(s.downtime(0), 20);
    }

    #[test]
    fn transitions_are_ordered_and_paired() {
        let s = AgentSchedule::from_intervals(
            vec![vec![iv(10, 20)], vec![iv(20, 30)], vec![iv(5, 100)]],
            100,
        );
        let ts = s.transitions();
        assert!(ts.windows(2).all(|w| w[0].at <= w[1].at), "time-ordered");
        // Agent 2's recovery lands exactly at the horizon, so it never
        // fires: 3 crashes + 2 recoveries.
        assert_eq!(ts.iter().filter(|t| t.down).count(), 3);
        assert_eq!(ts.iter().filter(|t| !t.down).count(), 2);
        // At t=20 the crash of agent 1 sorts before the recovery of 0.
        let at20: Vec<bool> = ts.iter().filter(|t| t.at == 20).map(|t| t.down).collect();
        assert_eq!(at20, vec![true, false]);
        assert_eq!(s.membership_changes(), 5);
    }

    #[test]
    fn min_live_is_conservative_at_tied_instants() {
        // Crash of 1 and recovery of 0 at t=20: the conservative sweep
        // counts the moment both are down.
        let s = AgentSchedule::from_intervals(vec![vec![iv(10, 20)], vec![iv(20, 30)]], 100);
        assert_eq!(s.min_live(2), 0);
        assert_eq!(s.min_live(3), 1, "a third, never-failing agent lifts the floor");
        // Non-overlapping outages keep one of two alive.
        let s = AgentSchedule::from_intervals(vec![vec![iv(10, 20)], vec![iv(25, 30)]], 100);
        assert_eq!(s.min_live(2), 1);
    }

    #[test]
    fn generate_is_deterministic_and_dimension_stable() {
        let p = UpDownProcess::exponential(10 * MINUTE, 2 * MINUTE);
        let horizon = 6 * HOUR;
        let a = AgentSchedule::generate(4, &p, horizon, 42);
        let b = AgentSchedule::generate(4, &p, horizon, 42);
        let wider = AgentSchedule::generate(6, &p, horizon, 42);
        for agent in 0..4 {
            assert_eq!(a.intervals(agent), b.intervals(agent), "same seed, same schedule");
            assert_eq!(
                a.intervals(agent),
                wider.intervals(agent),
                "adding agents must not perturb existing streams"
            );
        }
        assert_ne!(a.intervals(0), a.intervals(1), "streams are independent");
        assert_ne!(
            AgentSchedule::generate(4, &p, horizon, 43).intervals(0),
            a.intervals(0),
            "seed matters"
        );
    }

    #[test]
    fn single_crash_mirrors_the_legacy_field() {
        let s = AgentSchedule::single_crash(4, AgentId(2), 30 * SECOND);
        assert!(!s.is_down(2, 30 * SECOND - 1));
        assert!(s.is_down(2, 30 * SECOND));
        assert!(s.is_down(2, SimTime::MAX - 1), "never recovers");
        for a in [0usize, 1, 3] {
            assert!(s.intervals(a).is_empty());
        }
        let ts = s.transitions();
        assert_eq!(ts.len(), 1, "one crash, no recovery");
        assert_eq!(ts[0], Transition { at: 30 * SECOND, agent: AgentId(2), down: true });
        assert_eq!(s.min_live(4), 3);
    }
}
