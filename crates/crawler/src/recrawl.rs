//! Re-crawl scheduling against an evolving Web.
//!
//! "Other open problems are how to efficiently prioritize the crawling
//! frontier under a dynamic scenario (that is, on an evolving Web)"
//! (Section 6), plus the If-Modified-Since / sitemaps cooperation of
//! Section 3: with server cooperation the crawler learns whether a page
//! changed *without* downloading the body, spending only a cheap
//! conditional request.
//!
//! The simulation advances day by day: the change process marks pages
//! stale; the crawler spends a daily fetch budget according to a policy;
//! freshness is the fraction of pages whose indexed copy is current.

use dwr_sim::dist::Poisson;
use dwr_sim::{SimRng, SimTime, DAY};
use dwr_webgraph::evolve::ChangeProcess;
use dwr_webgraph::graph::PageId;
use dwr_webgraph::SyntheticWeb;

/// Revisit-ordering policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecrawlPolicy {
    /// Cycle through all pages uniformly, oldest copy first.
    UniformOldestFirst,
    /// Visit pages in descending estimated change rate, oldest copy first
    /// within a rate class (the freshness-aware policy).
    ChangeRateFirst,
}

/// Server-cooperation level (Section 3's crawler–server communication).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cooperation {
    /// Every revisit downloads the full page.
    None,
    /// If-Modified-Since: an unchanged page costs only `conditional_cost`
    /// of the budget (header exchange), a changed one a full fetch.
    IfModifiedSince,
}

/// Re-crawl simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecrawlConfig {
    /// Full-page fetches the crawler can afford per day.
    pub daily_budget: f64,
    /// Budget cost of a conditional request relative to a full fetch.
    pub conditional_cost: f64,
    /// Days to simulate.
    pub days: u32,
    /// Revisit policy.
    pub policy: RecrawlPolicy,
    /// Server cooperation.
    pub cooperation: Cooperation,
    /// New pages born per day (Table 1's "Web growth" external factor);
    /// each must be fetched once before it can be fresh.
    pub growth_per_day: f64,
}

/// Result of a re-crawl simulation.
#[derive(Debug, Clone)]
pub struct RecrawlReport {
    /// Mean fraction of pages fresh, sampled at the end of each day.
    pub mean_freshness: f64,
    /// Freshness at the end of each day.
    pub daily_freshness: Vec<f64>,
    /// Full fetches spent.
    pub full_fetches: u64,
    /// Conditional (not-modified) requests spent.
    pub conditional_requests: u64,
    /// Mean freshness of the *initial* corpus only (isolates the revisit
    /// capacity lost to discovering new pages).
    pub initial_mean_freshness: f64,
    /// Corpus size at the end (initial pages + growth).
    pub final_corpus_size: usize,
    /// Fraction of the final corpus ever fetched.
    pub discovery_coverage: f64,
}

/// Run the re-crawl simulation. Every page starts fresh at time 0.
pub fn simulate_recrawl(web: &SyntheticWeb, cfg: &RecrawlConfig, seed: u64) -> RecrawlReport {
    assert!(cfg.daily_budget > 0.0 && cfg.days > 0);
    assert!(cfg.conditional_cost > 0.0 && cfg.conditional_cost <= 1.0);
    let mut change = ChangeProcess::new(web, seed);
    let n = web.num_pages();
    // stale[p] = true when the indexed copy is outdated.
    let mut stale = vec![false; n];
    // last_visit[p] in days, for oldest-first ordering.
    let mut last_visit = vec![0u32; n];
    // Growth: pages beyond the initial web, not yet discovered. A born
    // page is stale-by-definition until its first fetch.
    let mut growth_rng = SimRng::new(seed).fork_named("growth");
    let growth = (cfg.growth_per_day > 0.0).then(|| Poisson::new(cfg.growth_per_day));
    let mut undiscovered: u64 = 0;
    let mut discovered_new: u64 = 0;
    let mut born_total: u64 = 0;

    // Priority order by change rate (descending), fixed over the run.
    let mut by_rate: Vec<u32> = (0..n as u32).collect();
    by_rate.sort_by(|&a, &b| {
        let ra = web.page(PageId(a)).change_rate_per_day;
        let rb = web.page(PageId(b)).change_rate_per_day;
        rb.partial_cmp(&ra).expect("rates are finite").then(a.cmp(&b))
    });

    let mut full = 0u64;
    let mut cond = 0u64;
    let mut daily = Vec::with_capacity(cfg.days as usize);
    let mut daily_initial = Vec::with_capacity(cfg.days as usize);

    for day in 1..=cfg.days {
        // Apply the day's changes.
        let events = change.events_in(SimTime::from(day - 1) * DAY, SimTime::from(day) * DAY);
        for e in events {
            stale[e.page.0 as usize] = true;
        }
        // Births.
        if let Some(g) = &growth {
            let born = g.sample(&mut growth_rng);
            undiscovered += born;
            born_total += born;
        }
        // Spend the budget: discovery of new pages takes priority (they
        // are guaranteed-stale), then the revisit policy.
        let mut budget = cfg.daily_budget;
        while budget >= 1.0 && undiscovered > 0 {
            budget -= 1.0;
            full += 1;
            undiscovered -= 1;
            discovered_new += 1;
        }
        let order: Vec<u32> = match cfg.policy {
            RecrawlPolicy::ChangeRateFirst => by_rate.clone(),
            RecrawlPolicy::UniformOldestFirst => {
                let mut v: Vec<u32> = (0..n as u32).collect();
                v.sort_by_key(|&p| (last_visit[p as usize], p));
                v
            }
        };
        for p in order {
            if budget <= 0.0 {
                break;
            }
            let idx = p as usize;
            match cfg.cooperation {
                Cooperation::None => {
                    budget -= 1.0;
                    full += 1;
                    stale[idx] = false;
                    last_visit[idx] = day;
                }
                Cooperation::IfModifiedSince => {
                    if stale[idx] {
                        budget -= 1.0;
                        full += 1;
                        stale[idx] = false;
                    } else {
                        budget -= cfg.conditional_cost;
                        cond += 1;
                    }
                    last_visit[idx] = day;
                }
            }
        }
        // Freshness over the *current* corpus: initial fresh pages plus
        // discovered growth; undiscovered pages count as not-fresh.
        let fresh_initial = stale.iter().filter(|&&s| !s).count() as u64;
        let corpus = n as u64 + born_total;
        daily.push((fresh_initial + discovered_new) as f64 / corpus as f64);
        daily_initial.push(fresh_initial as f64 / n as f64);
    }

    RecrawlReport {
        mean_freshness: daily.iter().sum::<f64>() / daily.len() as f64,
        initial_mean_freshness: daily_initial.iter().sum::<f64>() / daily_initial.len() as f64,
        daily_freshness: daily,
        full_fetches: full,
        conditional_requests: cond,
        final_corpus_size: n + born_total as usize,
        discovery_coverage: if born_total + n as u64 == 0 {
            1.0
        } else {
            (n as u64 + discovered_new) as f64 / (n as u64 + born_total) as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_webgraph::generate::{generate_web, WebConfig};

    fn web() -> SyntheticWeb {
        generate_web(&WebConfig::tiny(), 55)
    }

    fn base_cfg() -> RecrawlConfig {
        RecrawlConfig {
            daily_budget: 400.0, // 20% of the tiny web per day
            conditional_cost: 0.05,
            days: 20,
            policy: RecrawlPolicy::UniformOldestFirst,
            cooperation: Cooperation::None,
            growth_per_day: 0.0,
        }
    }

    #[test]
    fn freshness_in_unit_interval() {
        let r = simulate_recrawl(&web(), &base_cfg(), 1);
        assert_eq!(r.daily_freshness.len(), 20);
        assert!(r.daily_freshness.iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert!(r.mean_freshness > 0.0);
    }

    #[test]
    fn uniform_beats_greedy_change_rate_ordering() {
        // The counter-intuitive classic (Cho & Garcia-Molina): revisiting
        // proportionally to change rate starves the long tail of slowly
        // changing pages and LOSES to uniform revisiting on average
        // freshness. The simulation reproduces that ordering.
        let w = web();
        let uniform = simulate_recrawl(&w, &base_cfg(), 2);
        let greedy = simulate_recrawl(
            &w,
            &RecrawlConfig { policy: RecrawlPolicy::ChangeRateFirst, ..base_cfg() },
            2,
        );
        assert!(
            uniform.mean_freshness > greedy.mean_freshness,
            "uniform={} greedy={}",
            uniform.mean_freshness,
            greedy.mean_freshness
        );
    }

    #[test]
    fn greedy_keeps_dynamic_pages_fresher() {
        // What the greedy policy does buy: the hot (dynamic) pages are
        // essentially always fresh, at the cost of the static tail.
        let w = web();
        let greedy = simulate_recrawl(
            &w,
            &RecrawlConfig { policy: RecrawlPolicy::ChangeRateFirst, ..base_cfg() },
            6,
        );
        // Freshness stabilizes above the dynamic fraction's floor but the
        // tail drags it down over time.
        let early = greedy.daily_freshness[0];
        let late = *greedy.daily_freshness.last().unwrap();
        assert!(late <= early, "tail staleness accumulates: {early} -> {late}");
    }

    #[test]
    fn cooperation_stretches_the_budget() {
        let w = web();
        let blind = simulate_recrawl(&w, &base_cfg(), 3);
        let coop = simulate_recrawl(
            &w,
            &RecrawlConfig { cooperation: Cooperation::IfModifiedSince, ..base_cfg() },
            3,
        );
        assert!(
            coop.mean_freshness > blind.mean_freshness,
            "coop={} blind={}",
            coop.mean_freshness,
            blind.mean_freshness
        );
        assert!(coop.conditional_requests > 0);
    }

    #[test]
    fn bigger_budget_fresher_index() {
        let w = web();
        let small = simulate_recrawl(&w, &RecrawlConfig { daily_budget: 100.0, ..base_cfg() }, 4);
        let large = simulate_recrawl(&w, &RecrawlConfig { daily_budget: 1_000.0, ..base_cfg() }, 4);
        assert!(large.mean_freshness > small.mean_freshness);
    }

    #[test]
    fn deterministic() {
        let w = web();
        let a = simulate_recrawl(&w, &base_cfg(), 5);
        let b = simulate_recrawl(&w, &base_cfg(), 5);
        assert_eq!(a.daily_freshness, b.daily_freshness);
    }

    #[test]
    fn growth_consumes_budget_and_corpus_expands() {
        let w = web();
        let no_growth = simulate_recrawl(&w, &base_cfg(), 6);
        let grown = simulate_recrawl(&w, &RecrawlConfig { growth_per_day: 100.0, ..base_cfg() }, 6);
        assert!(grown.final_corpus_size > no_growth.final_corpus_size);
        assert!(grown.discovery_coverage > 0.99, "budget covers discovery");
        // Discovery fetches crowd out revisits: the *initial* corpus gets
        // staler (new pages are fresh right after their first fetch, so
        // whole-corpus freshness can mask the effect).
        assert!(
            grown.initial_mean_freshness < no_growth.initial_mean_freshness,
            "grown={} no_growth={}",
            grown.initial_mean_freshness,
            no_growth.initial_mean_freshness
        );
    }

    #[test]
    fn growth_beyond_budget_loses_coverage() {
        let w = web();
        let r = simulate_recrawl(
            &w,
            &RecrawlConfig { daily_budget: 50.0, growth_per_day: 120.0, days: 20, ..base_cfg() },
            7,
        );
        assert!(r.discovery_coverage < 1.0, "coverage={}", r.discovery_coverage);
        // Freshness degrades steadily as the web outgrows the crawler —
        // the introduction's core motivation.
        let first = r.daily_freshness[0];
        let last = *r.daily_freshness.last().unwrap();
        assert!(last < first, "first={first} last={last}");
    }
}
