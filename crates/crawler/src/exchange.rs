//! Batched inter-agent URL exchange with most-cited suppression.
//!
//! "Crawling agents must exchange URLs, and to reduce the overhead of
//! communication, these agents exchange them in batches. (...) Crawling
//! agents can have as part of their input the most cited URLs in the
//! collection (...) This information enables a significant reduction on
//! the communication complexity due to the power-law distribution of the
//! in-degree of pages" (Section 3).

use crate::assign::AgentId;
use dwr_webgraph::graph::PageId;
use std::collections::{HashMap, HashSet};

/// Wire-size model: bytes per URL in an exchange message.
pub const BYTES_PER_URL: u64 = 64;
/// Fixed per-message overhead in bytes.
pub const BYTES_PER_MESSAGE: u64 = 128;

/// Outgoing URL buffers of one agent, one per destination.
#[derive(Debug)]
pub struct ExchangeBuffers {
    buffers: HashMap<AgentId, Vec<PageId>>,
    batch_size: usize,
    /// URLs every agent already knows (most-cited seeding) — never sent.
    known: HashSet<PageId>,
    stats: ExchangeStats,
}

/// Traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// URLs handed to the exchange layer.
    pub offered: u64,
    /// URLs suppressed because they were pre-seeded as most-cited.
    pub suppressed: u64,
    /// URLs actually sent.
    pub sent_urls: u64,
    /// Messages sent.
    pub messages: u64,
    /// Total bytes sent.
    pub bytes: u64,
}

impl ExchangeBuffers {
    /// Create buffers that flush a destination after `batch_size` URLs.
    /// `known` is the shared most-cited set (may be empty).
    pub fn new(batch_size: usize, known: HashSet<PageId>) -> Self {
        assert!(batch_size > 0);
        ExchangeBuffers {
            buffers: HashMap::new(),
            batch_size,
            known,
            stats: ExchangeStats::default(),
        }
    }

    /// Offer a URL destined for `to`. Returns a full batch if the buffer
    /// reached the batch size (caller sends it), `None` otherwise.
    pub fn offer(&mut self, to: AgentId, url: PageId) -> Option<Vec<PageId>> {
        self.stats.offered += 1;
        if self.known.contains(&url) {
            self.stats.suppressed += 1;
            return None;
        }
        let buf = self.buffers.entry(to).or_default();
        buf.push(url);
        if buf.len() >= self.batch_size {
            let batch = std::mem::take(buf);
            self.account_send(&batch);
            Some(batch)
        } else {
            None
        }
    }

    /// Flush one destination (e.g. on a timer); returns the batch if any.
    pub fn flush(&mut self, to: AgentId) -> Option<Vec<PageId>> {
        let buf = self.buffers.get_mut(&to)?;
        if buf.is_empty() {
            return None;
        }
        let batch = std::mem::take(buf);
        self.account_send(&batch);
        Some(batch)
    }

    /// Flush everything, returning `(destination, batch)` pairs in
    /// destination order (deterministic).
    pub fn flush_all(&mut self) -> Vec<(AgentId, Vec<PageId>)> {
        let mut dests: Vec<AgentId> =
            self.buffers.iter().filter(|(_, b)| !b.is_empty()).map(|(&d, _)| d).collect();
        dests.sort_unstable();
        dests.into_iter().filter_map(|d| self.flush(d).map(|b| (d, b))).collect()
    }

    /// Move all buffered URLs addressed to `from` into unrouted output
    /// (used when the destination agent crashes before delivery).
    pub fn recall(&mut self, from: AgentId) -> Vec<PageId> {
        self.buffers.remove(&from).unwrap_or_default()
    }

    /// Recall *every* undelivered buffer, in destination order (used
    /// when this agent itself crashes: the coordinator re-routes the
    /// URLs to the hosts' current owners). Nothing is counted as sent.
    pub fn recall_all(&mut self) -> Vec<(AgentId, Vec<PageId>)> {
        let mut out: Vec<(AgentId, Vec<PageId>)> =
            self.buffers.drain().filter(|(_, b)| !b.is_empty()).collect();
        out.sort_unstable_by_key(|&(d, _)| d);
        out
    }

    fn account_send(&mut self, batch: &[PageId]) {
        self.stats.sent_urls += batch.len() as u64;
        self.stats.messages += 1;
        self.stats.bytes += BYTES_PER_MESSAGE + batch.len() as u64 * BYTES_PER_URL;
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ExchangeStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A1: AgentId = AgentId(1);
    const A2: AgentId = AgentId(2);

    #[test]
    fn batches_at_threshold() {
        let mut x = ExchangeBuffers::new(3, HashSet::new());
        assert!(x.offer(A1, PageId(1)).is_none());
        assert!(x.offer(A1, PageId(2)).is_none());
        let batch = x.offer(A1, PageId(3)).expect("full batch");
        assert_eq!(batch.len(), 3);
        assert_eq!(x.stats().messages, 1);
        assert_eq!(x.stats().sent_urls, 3);
    }

    #[test]
    fn destinations_buffer_independently() {
        let mut x = ExchangeBuffers::new(2, HashSet::new());
        assert!(x.offer(A1, PageId(1)).is_none());
        assert!(x.offer(A2, PageId(2)).is_none());
        assert!(x.offer(A1, PageId(3)).is_some());
        assert!(x.offer(A2, PageId(4)).is_some());
    }

    #[test]
    fn suppression_blocks_known_urls() {
        let known: HashSet<PageId> = [PageId(7), PageId(8)].into_iter().collect();
        let mut x = ExchangeBuffers::new(10, known);
        assert!(x.offer(A1, PageId(7)).is_none());
        assert!(x.offer(A1, PageId(8)).is_none());
        assert!(x.offer(A1, PageId(9)).is_none());
        let s = x.stats();
        assert_eq!(s.offered, 3);
        assert_eq!(s.suppressed, 2);
        let flushed = x.flush(A1).expect("one real url");
        assert_eq!(flushed, vec![PageId(9)]);
    }

    #[test]
    fn flush_all_deterministic_order() {
        let mut x = ExchangeBuffers::new(100, HashSet::new());
        x.offer(A2, PageId(1));
        x.offer(A1, PageId(2));
        let all = x.flush_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, A1);
        assert_eq!(all[1].0, A2);
        // Buffers now empty.
        assert!(x.flush_all().is_empty());
    }

    #[test]
    fn bytes_account_message_overhead() {
        let mut x = ExchangeBuffers::new(2, HashSet::new());
        x.offer(A1, PageId(1));
        x.offer(A1, PageId(2));
        assert_eq!(x.stats().bytes, BYTES_PER_MESSAGE + 2 * BYTES_PER_URL);
    }

    #[test]
    fn recall_all_empties_every_buffer_in_order() {
        let mut x = ExchangeBuffers::new(10, HashSet::new());
        x.offer(A2, PageId(1));
        x.offer(A1, PageId(2));
        let all = x.recall_all();
        assert_eq!(all, vec![(A1, vec![PageId(2)]), (A2, vec![PageId(1)])]);
        assert!(x.recall_all().is_empty());
        assert_eq!(x.stats().sent_urls, 0, "recalled URLs were never sent");
    }

    #[test]
    fn recall_returns_undelivered() {
        let mut x = ExchangeBuffers::new(10, HashSet::new());
        x.offer(A1, PageId(1));
        x.offer(A1, PageId(2));
        let recalled = x.recall(A1);
        assert_eq!(recalled, vec![PageId(1), PageId(2)]);
        assert!(x.flush(A1).is_none());
        // Recalled URLs were never "sent".
        assert_eq!(x.stats().sent_urls, 0);
    }
}
