//! Per-agent crawl frontier with hard politeness.
//!
//! "De facto standards of operation state that a crawler should not open
//! more than one connection at a time to each Web server, and should wait
//! several seconds between repeated accesses" \[4\]. The frontier enforces
//! both: a host is *busy* while one of its pages is being fetched, and
//! after completion it only becomes eligible again `politeness_delay`
//! later. Hosts are kept in a ready-heap keyed by eligibility time.

use dwr_sim::{SimTime, SECOND};
use dwr_webgraph::graph::{HostId, PageId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// The frontier of one crawling agent.
#[derive(Debug)]
pub struct Frontier {
    /// Per-host FIFO of pages to fetch.
    queues: HashMap<HostId, VecDeque<PageId>>,
    /// Hosts with pending pages, keyed by next-eligible time. A host is in
    /// the heap iff it has pages and is not busy.
    ready: BinaryHeap<Reverse<(SimTime, HostId)>>,
    /// Hosts currently fetching (politeness: at most one connection).
    busy: HashSet<HostId>,
    /// Earliest next access per host.
    next_allowed: HashMap<HostId, SimTime>,
    /// Pages ever enqueued (URL-seen test).
    seen: HashSet<PageId>,
    /// Minimum delay between accesses to one host.
    politeness_delay: SimTime,
    pending: usize,
}

impl Frontier {
    /// Create a frontier with the given inter-access delay (the paper's
    /// "several seconds"; default experiments use 2 s).
    pub fn new(politeness_delay: SimTime) -> Self {
        Frontier {
            queues: HashMap::new(),
            ready: BinaryHeap::new(),
            busy: HashSet::new(),
            next_allowed: HashMap::new(),
            seen: HashSet::new(),
            politeness_delay,
            pending: 0,
        }
    }

    /// A 2-second-politeness frontier.
    pub fn with_default_politeness() -> Self {
        Self::new(2 * SECOND)
    }

    /// Enqueue a page if its URL has not been seen before.
    /// Returns whether it was fresh.
    pub fn offer(&mut self, host: HostId, page: PageId, now: SimTime) -> bool {
        if !self.seen.insert(page) {
            return false;
        }
        let q = self.queues.entry(host).or_default();
        let was_empty = q.is_empty();
        q.push_back(page);
        self.pending += 1;
        if was_empty && !self.busy.contains(&host) {
            let at = self.next_allowed.get(&host).copied().unwrap_or(0).max(now);
            self.ready.push(Reverse((at, host)));
        }
        true
    }

    /// Whether the page's URL has been seen by this agent.
    pub fn has_seen(&self, page: PageId) -> bool {
        self.seen.contains(&page)
    }

    /// Forget a page from the seen set (used when ownership moves away so
    /// the new owner counts it; rarely needed by callers).
    pub fn mark_seen(&mut self, page: PageId) {
        self.seen.insert(page);
    }

    /// Number of pages waiting (not in flight).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Pop the next fetchable page at `now`.
    ///
    /// * `Ok((host, page))` — fetch this now; the host becomes busy.
    /// * `Err(Some(t))` — nothing eligible yet; earliest eligibility is `t`.
    /// * `Err(None)` — frontier has no pending pages at all.
    pub fn next_fetch(&mut self, now: SimTime) -> Result<(HostId, PageId), Option<SimTime>> {
        loop {
            let Some(&Reverse((at, host))) = self.ready.peek() else {
                return Err(None);
            };
            // Stale heap entries (host emptied or became busy) are skipped.
            let valid =
                !self.busy.contains(&host) && self.queues.get(&host).is_some_and(|q| !q.is_empty());
            if !valid {
                self.ready.pop();
                continue;
            }
            // Entries scheduled before the host's politeness floor was
            // raised (e.g. by a frontier handoff carrying `next_allowed`
            // from the previous owner) are re-keyed, never served early.
            let floor = self.next_allowed.get(&host).copied().unwrap_or(0);
            if at < floor {
                self.ready.pop();
                self.ready.push(Reverse((floor, host)));
                continue;
            }
            if at > now {
                return Err(Some(at));
            }
            self.ready.pop();
            let q = self.queues.get_mut(&host).expect("validated above");
            let page = q.pop_front().expect("validated above");
            self.pending -= 1;
            self.busy.insert(host);
            return Ok((host, page));
        }
    }

    /// Report a fetch completion (success or permanent failure) at `now`:
    /// frees the host and starts its politeness interval.
    pub fn complete(&mut self, host: HostId, now: SimTime) {
        let was_busy = self.busy.remove(&host);
        assert!(was_busy, "complete() for a host that was not busy");
        let at = now + self.politeness_delay;
        self.next_allowed.insert(host, at);
        if self.queues.get(&host).is_some_and(|q| !q.is_empty()) {
            self.ready.push(Reverse((at, host)));
        }
    }

    /// Re-queue a page after a transient failure; it goes to the back of
    /// its host's queue and the host gets an extra back-off before the next
    /// attempt. The host must currently be busy with this fetch.
    pub fn retry_later(&mut self, host: HostId, page: PageId, now: SimTime, backoff: SimTime) {
        let was_busy = self.busy.remove(&host);
        assert!(was_busy, "retry_later() for a host that was not busy");
        self.queues.entry(host).or_default().push_back(page);
        self.pending += 1;
        let at = now + self.politeness_delay + backoff;
        self.next_allowed.insert(host, at);
        self.ready.push(Reverse((at, host)));
    }

    /// Hosts with pending pages, ascending (deterministic iteration
    /// order for handoff paths).
    pub fn host_ids(&self) -> Vec<HostId> {
        let mut out: Vec<HostId> =
            self.queues.iter().filter(|(_, q)| !q.is_empty()).map(|(&h, _)| h).collect();
        out.sort_unstable();
        out
    }

    /// The earliest next access recorded for `host`, if any.
    pub fn next_allowed_of(&self, host: HostId) -> Option<SimTime> {
        self.next_allowed.get(&host).copied()
    }

    /// Whether `host` is currently marked busy (own fetch in flight, or
    /// blocked on a foreign connection via [`Frontier::block`]).
    pub fn is_busy(&self, host: HostId) -> bool {
        self.busy.contains(&host)
    }

    /// Remove `host`'s entire pending state — queued pages and the
    /// politeness clock — for handoff to another agent. The extracted
    /// pages are *unmarked* from the seen set so a later handoff can
    /// bring them back without the dedup filter eating them; any busy
    /// marker is cleared (callers only extract hosts whose connection,
    /// if one is open, belongs to someone else).
    pub fn extract_host(&mut self, host: HostId) -> (Vec<PageId>, Option<SimTime>) {
        let pages: Vec<PageId> = self.queues.remove(&host).map(Vec::from).unwrap_or_default();
        self.pending -= pages.len();
        for p in &pages {
            self.seen.remove(p);
        }
        self.busy.remove(&host);
        (pages, self.next_allowed.remove(&host))
    }

    /// Install `host`'s state received from a handoff: raise the
    /// politeness floor to `floor` (never lower it) and enqueue the
    /// pages, deduplicating against this agent's seen set. Returns how
    /// many pages were actually installed (fresh here).
    pub fn install_host(
        &mut self,
        host: HostId,
        pages: impl IntoIterator<Item = PageId>,
        floor: Option<SimTime>,
        now: SimTime,
    ) -> usize {
        if let Some(at) = floor {
            self.impose_next_allowed(host, at);
        }
        pages.into_iter().filter(|&p| self.offer(host, p, now)).count()
    }

    /// Raise `host`'s next-allowed-access time to at least `at`
    /// (politeness carry-over across ownership transfers; never lowers
    /// an existing floor).
    pub fn impose_next_allowed(&mut self, host: HostId, at: SimTime) {
        let e = self.next_allowed.entry(host).or_insert(at);
        *e = (*e).max(at);
    }

    /// Mark `host` busy on behalf of a *foreign* connection: another
    /// agent still has this host's one allowed connection open (a
    /// deferred handoff), so this agent must not fetch from it until
    /// [`Frontier::unblock`].
    pub fn block(&mut self, host: HostId) {
        self.busy.insert(host);
    }

    /// Lift a [`Frontier::block`] once the foreign connection closed at
    /// politeness floor `at`, re-arming the ready heap if pages wait.
    pub fn unblock(&mut self, host: HostId, at: SimTime) {
        self.busy.remove(&host);
        self.impose_next_allowed(host, at);
        if self.queues.get(&host).is_some_and(|q| !q.is_empty()) {
            let floor = self.next_allowed.get(&host).copied().unwrap_or(at);
            self.ready.push(Reverse((floor, host)));
        }
    }

    /// Remove and return all pending pages (used when this agent crashes
    /// and its work is redistributed). Seen set is dropped with the agent.
    pub fn drain(&mut self) -> Vec<(HostId, PageId)> {
        let mut out = Vec::with_capacity(self.pending);
        for (&host, q) in &mut self.queues {
            while let Some(p) = q.pop_front() {
                out.push((host, p));
            }
        }
        self.pending = 0;
        self.ready.clear();
        // Deterministic order for the reassignment path.
        out.sort_unstable_by_key(|&(h, p)| (h, p));
        out
    }

    /// Whether any host is mid-fetch.
    pub fn has_busy(&self) -> bool {
        !self.busy.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H1: HostId = HostId(1);
    const H2: HostId = HostId(2);

    #[test]
    fn offer_dedupes() {
        let mut f = Frontier::new(SECOND);
        assert!(f.offer(H1, PageId(1), 0));
        assert!(!f.offer(H1, PageId(1), 0));
        assert_eq!(f.pending(), 1);
    }

    #[test]
    fn one_connection_per_host() {
        let mut f = Frontier::new(SECOND);
        f.offer(H1, PageId(1), 0);
        f.offer(H1, PageId(2), 0);
        let (h, p) = f.next_fetch(0).expect("first fetch");
        assert_eq!((h, p), (H1, PageId(1)));
        // Second page of same host is blocked while busy.
        assert_eq!(f.next_fetch(0), Err(None));
        f.complete(H1, 10);
        // Politeness: not before 10 + 1s.
        assert_eq!(f.next_fetch(10), Err(Some(10 + SECOND)));
        let (h2, p2) = f.next_fetch(10 + SECOND).expect("after politeness");
        assert_eq!((h2, p2), (H1, PageId(2)));
    }

    #[test]
    fn different_hosts_fetch_concurrently() {
        let mut f = Frontier::new(SECOND);
        f.offer(H1, PageId(1), 0);
        f.offer(H2, PageId(2), 0);
        let a = f.next_fetch(0).expect("host 1");
        let b = f.next_fetch(0).expect("host 2");
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn politeness_interval_enforced_between_accesses() {
        let mut f = Frontier::new(2 * SECOND);
        f.offer(H1, PageId(1), 0);
        f.offer(H1, PageId(2), 0);
        let _ = f.next_fetch(0).unwrap();
        f.complete(H1, 5 * SECOND);
        match f.next_fetch(5 * SECOND) {
            Err(Some(t)) => assert_eq!(t, 7 * SECOND),
            other => panic!("expected wait, got {other:?}"),
        }
    }

    #[test]
    fn retry_backs_off() {
        let mut f = Frontier::new(SECOND);
        f.offer(H1, PageId(1), 0);
        let _ = f.next_fetch(0).unwrap();
        f.retry_later(H1, PageId(1), 0, 10 * SECOND);
        assert_eq!(f.pending(), 1);
        match f.next_fetch(0) {
            Err(Some(t)) => assert_eq!(t, 11 * SECOND),
            other => panic!("expected backoff, got {other:?}"),
        }
        let (_, p) = f.next_fetch(11 * SECOND).unwrap();
        assert_eq!(p, PageId(1));
    }

    #[test]
    fn drain_returns_everything_pending() {
        let mut f = Frontier::new(SECOND);
        f.offer(H1, PageId(1), 0);
        f.offer(H1, PageId(2), 0);
        f.offer(H2, PageId(3), 0);
        let _ = f.next_fetch(0).unwrap(); // one in flight, not drained
        let drained = f.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn empty_frontier_reports_none() {
        let mut f = Frontier::new(SECOND);
        assert_eq!(f.next_fetch(100), Err(None));
    }

    #[test]
    #[should_panic(expected = "not busy")]
    fn complete_requires_busy() {
        let mut f = Frontier::new(SECOND);
        f.complete(H1, 0);
    }

    #[test]
    fn extract_install_roundtrip_preserves_politeness() {
        let mut src = Frontier::new(2 * SECOND);
        src.offer(H1, PageId(1), 0);
        src.offer(H1, PageId(2), 0);
        let _ = src.next_fetch(0).unwrap();
        src.complete(H1, 10 * SECOND); // next allowed at 12 s
        let (pages, na) = src.extract_host(H1);
        assert_eq!(pages, vec![PageId(2)]);
        assert_eq!(na, Some(12 * SECOND));
        assert_eq!(src.pending(), 0);
        assert!(!src.has_seen(PageId(2)), "extracted pages are unmarked");

        let mut dst = Frontier::new(2 * SECOND);
        let installed = dst.install_host(H1, pages, na, 10 * SECOND);
        assert_eq!(installed, 1);
        // The new owner honours the previous owner's politeness clock.
        match dst.next_fetch(10 * SECOND) {
            Err(Some(t)) => assert_eq!(t, 12 * SECOND),
            other => panic!("expected politeness wait, got {other:?}"),
        }
        assert_eq!(dst.next_fetch(12 * SECOND), Ok((H1, PageId(2))));
    }

    #[test]
    fn raised_floor_rekeys_stale_ready_entries() {
        let mut f = Frontier::new(SECOND);
        f.offer(H1, PageId(1), 0); // ready at 0
        f.impose_next_allowed(H1, 9 * SECOND);
        // The heap entry at t=0 is stale; next_fetch must not serve it.
        match f.next_fetch(5 * SECOND) {
            Err(Some(t)) => assert_eq!(t, 9 * SECOND),
            other => panic!("expected re-keyed wait, got {other:?}"),
        }
        assert_eq!(f.next_fetch(9 * SECOND), Ok((H1, PageId(1))));
    }

    #[test]
    fn block_defers_and_unblock_rearms() {
        let mut f = Frontier::new(SECOND);
        f.block(H1);
        f.offer(H1, PageId(1), 0);
        assert_eq!(f.next_fetch(100 * SECOND), Err(None), "blocked host is not served");
        assert!(f.is_busy(H1));
        f.unblock(H1, 3 * SECOND);
        assert!(!f.is_busy(H1));
        match f.next_fetch(0) {
            Err(Some(t)) => assert_eq!(t, 3 * SECOND),
            other => panic!("expected floor wait, got {other:?}"),
        }
        assert_eq!(f.next_fetch(3 * SECOND), Ok((H1, PageId(1))));
    }

    #[test]
    fn install_host_dedupes_against_seen() {
        let mut f = Frontier::new(SECOND);
        f.offer(H1, PageId(1), 0);
        let installed = f.install_host(H1, [PageId(1), PageId(2)], None, 0);
        assert_eq!(installed, 1, "already-seen page is dropped");
        assert_eq!(f.pending(), 2);
    }

    #[test]
    fn extract_missing_host_is_empty() {
        let mut f = Frontier::new(SECOND);
        assert_eq!(f.extract_host(H2), (Vec::new(), None));
        assert!(f.host_ids().is_empty());
    }

    #[test]
    fn fifo_within_host() {
        let mut f = Frontier::new(0);
        for i in 0..5 {
            f.offer(H1, PageId(i), 0);
        }
        let mut order = Vec::new();
        for _ in 0..5 {
            let (_, p) = f.next_fetch(1_000_000).unwrap();
            order.push(p.0);
            f.complete(H1, 1_000_000);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
