//! Host-to-agent assignment policies.
//!
//! "A trivial, but reasonable assignment policy is to use hashing to
//! transform server names into a number that corresponds to the index of
//! the corresponding crawling agent" — but it re-shuffles almost everything
//! when the agent pool changes. "The authors of \[6\] propose to use
//! consistent hashing, which replicates the hashing buckets. With
//! consistent hashing, new agents enter the crawling system without
//! re-hashing all the server names."
//!
//! All assigners map a [`HostId`] (never an individual URL — host-level
//! assignment preserves link locality and politeness ownership) to an
//! [`AgentId`].

use dwr_webgraph::graph::HostId;
use dwr_webgraph::SyntheticWeb;
use std::collections::BTreeMap;

/// Identifier of a crawling agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub u32);

/// A host-to-agent assignment policy.
pub trait UrlAssigner {
    /// The agent responsible for `host`.
    fn agent_for(&self, host: HostId, web: &SyntheticWeb) -> AgentId;
    /// Live agents, ascending.
    fn agents(&self) -> Vec<AgentId>;
    /// Remove a crashed/departed agent; its hosts flow to the survivors.
    /// Removing an unknown agent or the *last* live agent is refused
    /// (returns `false`) instead of panicking — an assigner must always
    /// be able to answer [`UrlAssigner::agent_for`].
    fn remove_agent(&mut self, agent: AgentId) -> bool;
    /// Add a (new or recovered) agent. Adding an already-present agent
    /// is an ignored no-op (returns `false`).
    fn add_agent(&mut self, agent: AgentId) -> bool;
}

/// FNV-1a host-name hash — stable across runs, used by all hash policies.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Plain modulo hashing: `agent = hash(host) mod n`.
///
/// Balanced over *hosts*, but any membership change remaps ~(n-1)/n of all
/// hosts — the weakness consistent hashing fixes.
#[derive(Debug, Clone)]
pub struct HashAssigner {
    agents: Vec<AgentId>,
}

impl HashAssigner {
    /// Create with agents `0..n`.
    pub fn new(n: u32) -> Self {
        assert!(n > 0);
        HashAssigner { agents: (0..n).map(AgentId).collect() }
    }
}

impl UrlAssigner for HashAssigner {
    fn agent_for(&self, host: HostId, web: &SyntheticWeb) -> AgentId {
        let h = hash_name(&web.host(host).name);
        self.agents[(h % self.agents.len() as u64) as usize]
    }
    fn agents(&self) -> Vec<AgentId> {
        self.agents.clone()
    }
    fn remove_agent(&mut self, agent: AgentId) -> bool {
        if self.agents.len() <= 1 || !self.agents.contains(&agent) {
            return false;
        }
        self.agents.retain(|&a| a != agent);
        true
    }
    fn add_agent(&mut self, agent: AgentId) -> bool {
        if self.agents.contains(&agent) {
            return false;
        }
        self.agents.push(agent);
        self.agents.sort_unstable();
        true
    }
}

/// Consistent hashing with replicated virtual buckets (UbiCrawler-style).
///
/// Each agent owns `replicas` points on a `u64` ring; a host maps to the
/// first agent point at or after its hash. Membership changes move only
/// the hosts in the vanished/created arcs.
#[derive(Debug, Clone)]
pub struct ConsistentHashAssigner {
    ring: BTreeMap<u64, AgentId>,
    replicas: u32,
    agents: Vec<AgentId>,
}

impl ConsistentHashAssigner {
    /// Create with agents `0..n`, each owning `replicas` virtual buckets.
    pub fn new(n: u32, replicas: u32) -> Self {
        assert!(n > 0 && replicas > 0);
        let mut s = ConsistentHashAssigner { ring: BTreeMap::new(), replicas, agents: Vec::new() };
        for a in 0..n {
            s.add_agent(AgentId(a));
        }
        s
    }

    fn points_of(agent: AgentId, replicas: u32) -> impl Iterator<Item = u64> {
        (0..replicas).map(move |r| {
            // Mix agent and replica through SplitMix-style finalization.
            let mut z = (u64::from(agent.0) << 32 | u64::from(r))
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
    }
}

impl UrlAssigner for ConsistentHashAssigner {
    fn agent_for(&self, host: HostId, web: &SyntheticWeb) -> AgentId {
        let h = hash_name(&web.host(host).name);
        // First ring point at or after h, wrapping around.
        self.ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, &a)| a)
            .expect("ring is never empty")
    }
    fn agents(&self) -> Vec<AgentId> {
        self.agents.clone()
    }
    fn remove_agent(&mut self, agent: AgentId) -> bool {
        if self.agents.len() <= 1 || !self.agents.contains(&agent) {
            return false;
        }
        for p in Self::points_of(agent, self.replicas) {
            self.ring.remove(&p);
        }
        self.agents.retain(|&a| a != agent);
        debug_assert!(!self.ring.is_empty());
        true
    }
    fn add_agent(&mut self, agent: AgentId) -> bool {
        if self.agents.contains(&agent) {
            return false;
        }
        for p in Self::points_of(agent, self.replicas) {
            self.ring.insert(p, agent);
        }
        self.agents.push(agent);
        self.agents.sort_unstable();
        true
    }
}

/// Geographic assignment: hosts go to an agent in their region (chosen by
/// hash among that region's agents), falling back to plain hashing when a
/// region has no agent. Models "distribute Web crawlers across distinct
/// geographic locations" \[13\].
#[derive(Debug, Clone)]
pub struct GeoAssigner {
    /// `region_agents[r]` = agents located in region `r`.
    region_agents: Vec<Vec<AgentId>>,
    /// Home region of every agent ever seen, surviving removal — so a
    /// recovered agent rejoins its old region.
    region_of: BTreeMap<AgentId, u16>,
    all: Vec<AgentId>,
}

impl GeoAssigner {
    /// Create from each agent's region: `agent_regions[a]` is the region of
    /// agent `a`.
    pub fn new(agent_regions: &[u16]) -> Self {
        assert!(!agent_regions.is_empty());
        let regions = usize::from(*agent_regions.iter().max().expect("non-empty")) + 1;
        let mut region_agents = vec![Vec::new(); regions];
        let mut region_of = BTreeMap::new();
        let mut all = Vec::with_capacity(agent_regions.len());
        for (a, &r) in agent_regions.iter().enumerate() {
            region_agents[usize::from(r)].push(AgentId(a as u32));
            region_of.insert(AgentId(a as u32), r);
            all.push(AgentId(a as u32));
        }
        GeoAssigner { region_agents, region_of, all }
    }

    /// Add `agent` to `region` (new agent, or relocate a known one).
    pub fn add_agent_in_region(&mut self, agent: AgentId, region: u16) {
        if let Some(&old) = self.region_of.get(&agent) {
            if self.all.contains(&agent) && old == region {
                return;
            }
            self.region_agents[usize::from(old)].retain(|&a| a != agent);
        }
        if usize::from(region) >= self.region_agents.len() {
            self.region_agents.resize(usize::from(region) + 1, Vec::new());
        }
        self.region_agents[usize::from(region)].push(agent);
        self.region_agents[usize::from(region)].sort_unstable();
        self.region_of.insert(agent, region);
        if !self.all.contains(&agent) {
            self.all.push(agent);
            self.all.sort_unstable();
        }
    }

    /// The home region of `agent`, if it has ever been placed.
    pub fn region_of(&self, agent: AgentId) -> Option<u16> {
        self.region_of.get(&agent).copied()
    }
}

impl UrlAssigner for GeoAssigner {
    fn agent_for(&self, host: HostId, web: &SyntheticWeb) -> AgentId {
        let region = usize::from(web.host(host).region);
        let h = hash_name(&web.host(host).name);
        let pool = self.region_agents.get(region).filter(|p| !p.is_empty()).unwrap_or(&self.all);
        pool[(h % pool.len() as u64) as usize]
    }
    fn agents(&self) -> Vec<AgentId> {
        self.all.clone()
    }
    fn remove_agent(&mut self, agent: AgentId) -> bool {
        if self.all.len() <= 1 || !self.all.contains(&agent) {
            return false;
        }
        for pool in &mut self.region_agents {
            pool.retain(|&a| a != agent);
        }
        self.all.retain(|&a| a != agent);
        true
    }
    /// Add a (new or recovered) agent. A previously seen agent rejoins
    /// its remembered home region; an agent never seen before joins the
    /// global fallback pool only (it serves hosts of agent-less regions)
    /// until [`GeoAssigner::add_agent_in_region`] places it.
    fn add_agent(&mut self, agent: AgentId) -> bool {
        if self.all.contains(&agent) {
            return false;
        }
        if let Some(&region) = self.region_of.get(&agent) {
            self.add_agent_in_region(agent, region);
        } else {
            self.all.push(agent);
            self.all.sort_unstable();
        }
        true
    }
}

/// Per-agent counts of hosts and pages under an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignmentLoad {
    /// Hosts per agent, indexed by position in `agents()` order.
    pub hosts: Vec<u64>,
    /// Pages per agent (what actually determines crawl work).
    pub pages: Vec<u64>,
}

/// Measure the host/page balance of an assigner over a web.
pub fn assignment_load<A: UrlAssigner + ?Sized>(
    assigner: &A,
    web: &SyntheticWeb,
) -> AssignmentLoad {
    let agents = assigner.agents();
    let index: std::collections::HashMap<AgentId, usize> =
        agents.iter().enumerate().map(|(i, &a)| (a, i)).collect();
    let mut hosts = vec![0u64; agents.len()];
    let mut pages = vec![0u64; agents.len()];
    for h in web.host_ids() {
        let a = assigner.agent_for(h, web);
        let i = index[&a];
        hosts[i] += 1;
        pages[i] += web.pages_of_host(h).len() as u64;
    }
    AssignmentLoad { hosts, pages }
}

/// Fraction of hosts whose owner changes between two assignments —
/// the "movement" cost of a membership change.
pub fn movement_fraction<A: UrlAssigner + ?Sized, B: UrlAssigner + ?Sized>(
    before: &A,
    after: &B,
    web: &SyntheticWeb,
) -> f64 {
    let moved =
        web.host_ids().filter(|&h| before.agent_for(h, web) != after.agent_for(h, web)).count();
    moved as f64 / web.num_hosts() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_webgraph::generate::{generate_web, WebConfig};

    fn web() -> SyntheticWeb {
        generate_web(&WebConfig::tiny(), 31)
    }

    #[test]
    fn hash_assigner_is_deterministic_and_total() {
        let web = web();
        let a = HashAssigner::new(8);
        for h in web.host_ids() {
            let x = a.agent_for(h, &web);
            assert_eq!(x, a.agent_for(h, &web));
            assert!(x.0 < 8);
        }
    }

    #[test]
    fn hash_assigner_balances_hosts() {
        let web = web();
        let a = HashAssigner::new(4);
        let load = assignment_load(&a, &web);
        let mean = web.num_hosts() as f64 / 4.0;
        for &h in &load.hosts {
            assert!((h as f64 - mean).abs() < mean * 0.6, "hosts={:?}", load.hosts);
        }
    }

    #[test]
    fn hash_assigner_remaps_nearly_everything_on_change() {
        let web = web();
        let before = HashAssigner::new(8);
        let mut after = HashAssigner::new(8);
        after.remove_agent(AgentId(3));
        let moved = movement_fraction(&before, &after, &web);
        assert!(moved > 0.6, "moved={moved}");
    }

    #[test]
    fn consistent_hash_moves_only_lost_arcs() {
        let web = web();
        let before = ConsistentHashAssigner::new(8, 64);
        let mut after = before.clone();
        after.remove_agent(AgentId(3));
        let moved = movement_fraction(&before, &after, &web);
        // Ideal: 1/8 = 0.125 of hosts move. Allow sampling slack.
        assert!(moved < 0.25, "moved={moved}");
        assert!(moved > 0.0);
        // And the moved hosts were exactly agent 3's.
        for h in web.host_ids() {
            if before.agent_for(h, &web) != AgentId(3) {
                assert_eq!(before.agent_for(h, &web), after.agent_for(h, &web));
            } else {
                assert_ne!(after.agent_for(h, &web), AgentId(3));
            }
        }
    }

    #[test]
    fn consistent_hash_add_agent_monotone() {
        // Monotonicity: adding an agent only moves hosts *to* the new agent.
        let web = web();
        let before = ConsistentHashAssigner::new(8, 64);
        let mut after = before.clone();
        after.add_agent(AgentId(8));
        for h in web.host_ids() {
            let b = before.agent_for(h, &web);
            let a = after.agent_for(h, &web);
            assert!(a == b || a == AgentId(8), "host {h:?} moved {b:?} -> {a:?}");
        }
    }

    #[test]
    fn consistent_hash_balances_with_enough_replicas() {
        let web = web();
        let a = ConsistentHashAssigner::new(8, 128);
        let load = assignment_load(&a, &web);
        let mean = web.num_hosts() as f64 / 8.0;
        let max = *load.hosts.iter().max().unwrap() as f64;
        assert!(max < 2.2 * mean, "hosts={:?}", load.hosts);
    }

    #[test]
    fn more_replicas_balance_better() {
        let web = web();
        let imb = |replicas| {
            let a = ConsistentHashAssigner::new(8, replicas);
            let load = assignment_load(&a, &web);
            let mean = load.hosts.iter().sum::<u64>() as f64 / 8.0;
            *load.hosts.iter().max().unwrap() as f64 / mean
        };
        assert!(imb(256) < imb(2), "256 replicas should balance better than 2");
    }

    #[test]
    fn geo_assigner_respects_regions() {
        let web = web();
        // Two regions, two agents each: agents 0,1 in region 0; 2,3 in 1.
        let geo = GeoAssigner::new(&[0, 0, 1, 1]);
        for h in web.host_ids() {
            let a = geo.agent_for(h, &web);
            let region = web.host(h).region;
            let expected: &[u32] = if region == 0 { &[0, 1] } else { &[2, 3] };
            assert!(expected.contains(&a.0), "host region {region} -> agent {a:?}");
        }
    }

    #[test]
    fn geo_assigner_falls_back_when_region_empty() {
        let web = web();
        let mut geo = GeoAssigner::new(&[0, 0, 1]);
        geo.remove_agent(AgentId(2));
        // Region 1 now empty; hosts there must still get an agent.
        for h in web.host_ids() {
            let a = geo.agent_for(h, &web);
            assert!(a.0 < 2);
        }
    }

    #[test]
    fn cannot_remove_last_agent() {
        // Refused gracefully, not a panic: a crashed "last agent" keeps
        // serving in the simulator, and the assigner must stay total.
        let mut a = HashAssigner::new(1);
        assert!(!a.remove_agent(AgentId(0)));
        assert_eq!(a.agents(), vec![AgentId(0)]);

        let mut c = ConsistentHashAssigner::new(1, 16);
        assert!(!c.remove_agent(AgentId(0)));
        assert_eq!(c.agents(), vec![AgentId(0)]);

        let mut g = GeoAssigner::new(&[0]);
        assert!(!g.remove_agent(AgentId(0)));
        assert_eq!(g.agents(), vec![AgentId(0)]);
    }

    #[test]
    fn remove_unknown_agent_is_refused() {
        let web = web();
        let mut a = HashAssigner::new(4);
        assert!(!a.remove_agent(AgentId(17)));
        assert_eq!(a.agents().len(), 4);

        let before = ConsistentHashAssigner::new(4, 32);
        let mut c = before.clone();
        assert!(!c.remove_agent(AgentId(17)));
        assert_eq!(movement_fraction(&before, &c, &web), 0.0, "no-op must not move hosts");

        let mut g = GeoAssigner::new(&[0, 1]);
        assert!(!g.remove_agent(AgentId(17)));
        assert_eq!(g.agents().len(), 2);
    }

    #[test]
    fn add_duplicate_agent_is_refused() {
        let web = web();
        let mut a = HashAssigner::new(4);
        assert!(!a.add_agent(AgentId(2)));
        assert_eq!(a.agents().len(), 4);

        let before = ConsistentHashAssigner::new(4, 32);
        let mut c = before.clone();
        assert!(!c.add_agent(AgentId(2)));
        assert_eq!(c.agents().len(), 4);
        assert_eq!(movement_fraction(&before, &c, &web), 0.0, "no-op must not move hosts");

        let mut g = GeoAssigner::new(&[0, 1]);
        assert!(!g.add_agent(AgentId(1)));
        assert_eq!(g.agents().len(), 2);
    }

    #[test]
    fn remove_then_add_roundtrips() {
        let web = web();
        let before = ConsistentHashAssigner::new(6, 64);
        let mut c = before.clone();
        assert!(c.remove_agent(AgentId(3)));
        assert!(c.add_agent(AgentId(3)));
        assert_eq!(c.agents(), before.agents());
        assert_eq!(
            movement_fraction(&before, &c, &web),
            0.0,
            "recovery restores the exact pre-crash assignment"
        );
    }

    #[test]
    fn geo_recovered_agent_rejoins_its_region() {
        let web = web();
        let original = GeoAssigner::new(&[0, 0, 1, 1]);
        let mut geo = original.clone();
        geo.remove_agent(AgentId(2));
        geo.add_agent(AgentId(2)); // recovery: no panic, back to region 1
        assert_eq!(geo.region_of(AgentId(2)), Some(1));
        assert_eq!(geo.agents(), original.agents());
        // Assignment is exactly what it was before the crash.
        assert_eq!(movement_fraction(&original, &geo, &web), 0.0);
    }

    #[test]
    fn geo_unknown_agent_joins_fallback_pool() {
        let web = web();
        let mut geo = GeoAssigner::new(&[0, 0, 1]);
        geo.add_agent(AgentId(9)); // never seen, region unknown: no panic
        assert!(geo.agents().contains(&AgentId(9)));
        assert_eq!(geo.region_of(AgentId(9)), None);
        // Hosts in regions that still have agents are unaffected...
        for h in web.host_ids() {
            assert_ne!(geo.agent_for(h, &web), AgentId(9));
        }
        // ...but once its region empties, the fallback pool (which now
        // includes agent 9) serves those hosts.
        geo.remove_agent(AgentId(2));
        let serves_fallback = web.host_ids().any(|h| geo.agent_for(h, &web) == AgentId(9));
        assert!(serves_fallback || web.host_ids().all(|h| web.host(h).region == 0));
    }

    #[test]
    fn geo_add_agent_in_region_places_and_relocates() {
        let web = web();
        let mut geo = GeoAssigner::new(&[0, 0, 1]);
        geo.add_agent_in_region(AgentId(3), 1);
        assert_eq!(geo.region_of(AgentId(3)), Some(1));
        for h in web.host_ids() {
            let a = geo.agent_for(h, &web);
            let region = web.host(h).region;
            if a == AgentId(3) {
                assert_eq!(region, 1);
            }
        }
        // Relocation to a brand-new region grows the region table.
        geo.add_agent_in_region(AgentId(3), 5);
        assert_eq!(geo.region_of(AgentId(3)), Some(5));
        // Idempotent re-add in the same region.
        geo.add_agent_in_region(AgentId(3), 5);
        assert_eq!(geo.agents().iter().filter(|a| a.0 == 3).count(), 1);
    }

    #[test]
    fn geo_add_agent_is_idempotent_for_live_agents() {
        let original = GeoAssigner::new(&[0, 1]);
        let mut geo = original.clone();
        geo.add_agent(AgentId(0));
        geo.add_agent(AgentId(1));
        assert_eq!(geo.agents(), original.agents());
    }
}
