//! # dwr-crawler — distributed crawling (Section 3)
//!
//! A distributed crawler "operates simultaneous crawling agents (...) the
//! same agent is responsible for all the content of a set of Web servers"
//! — and its design questions are exactly the paper's Table 1 row:
//!
//! * **Partitioning** ([`assign`]) — URL/host assignment: plain hashing,
//!   consistent hashing with replicated virtual buckets (UbiCrawler \[6\]),
//!   and geographic assignment \[13\]. Metrics: balance and how many hosts
//!   move when an agent joins or leaves.
//! * **Communication** ([`exchange`]) — batched URL exchanges between
//!   agents, with suppression of the most-cited URLs ("agents do not need
//!   to exchange URLs found very frequently" thanks to the power-law
//!   in-degree \[5\]).
//! * **Dependability** ([`sim`], [`faults`]) — schedule-driven agent
//!   churn: agents crash *and recover* mid-crawl under an
//!   [`AgentSchedule`]; each membership change updates the live assigner,
//!   re-routes the affected hosts, and hands the departing agent's
//!   unfetched frontier to the new owners with host-level politeness
//!   state carried over, so the crawl completes with bounded duplicate
//!   work and the one-connection/delay invariant intact.
//! * **External factors** ([`sim`], via `dwr-webgraph`'s DNS and QoS
//!   models) — DNS caching, slow servers, transient failures and retry,
//!   and the hard politeness invariant: *never more than one open
//!   connection per server* plus a minimum delay between accesses.
//! * **Re-crawling** ([`recrawl`]) — freshness-driven revisit scheduling
//!   against the web's change process, with server cooperation and growth.
//! * **Prioritization** ([`priority`]) — citation-count frontier ordering
//!   ("prioritize high-quality objects"; Section 6's open problem).

pub mod assign;
pub mod exchange;
pub mod faults;
pub mod frontier;
pub mod priority;
pub mod recrawl;
pub mod sim;

pub use assign::{AgentId, ConsistentHashAssigner, GeoAssigner, HashAssigner, UrlAssigner};
pub use faults::{AgentSchedule, Transition};
pub use sim::{
    CrawlConfig, CrawlFaultStats, CrawlReport, DistributedCrawl, FetchSpan, SpanOutcome,
};
