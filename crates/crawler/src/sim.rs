//! The distributed crawl simulation.
//!
//! Event-driven execution of a full distributed crawl over a
//! [`SyntheticWeb`]: agents with bounded connection pools fetch pages
//! through the QoS model (slow servers, transient failures, retries),
//! resolve hosts through per-agent DNS caches, enforce per-host politeness
//! via [`Frontier`], route discovered URLs with a pluggable
//! [`UrlAssigner`], exchange non-local URLs in batches, and survive
//! *repeated* agent crashes and recoveries (the dependability scenario of
//! Section 3) driven by an [`AgentSchedule`].
//!
//! # Membership changes
//!
//! On every pool change the live assigner is updated
//! (`remove_agent`/`add_agent`) and ownership is diffed host by host.
//! For each host whose owner changed, the old owner's per-host queue and
//! politeness clock (`next_allowed`) migrate to the new owner in one
//! *handoff batch*, so ownership transfer can never violate the
//! one-connection/delay invariant:
//!
//! * if the old owner still has the host's one allowed connection open,
//!   the handoff is **deferred**: the new owner's frontier is blocked for
//!   that host and the migration completes when the fetch finishes
//!   (rule 2, resolved in the `FetchDone` handler);
//! * a crashed agent's in-flight fetches are charged as *lost work*
//!   (`lost_inflight`) and their pages re-enter the new owner's queue
//!   behind a `now + politeness_delay` floor — the crashed connection
//!   still counts against the host's access clock;
//! * the crashed agent's DNS cache and exchange buffers die with it and
//!   are rebuilt empty on recovery; its undelivered exchange buffers are
//!   recalled and re-routed by the coordinator.

use crate::assign::{AgentId, UrlAssigner};
use crate::exchange::{ExchangeBuffers, ExchangeStats};
use crate::faults::{AgentSchedule, Transition};
use crate::frontier::Frontier;
use dwr_obs::{Event as ObsEvent, NoopRecorder, Recorder};
use dwr_sim::event::{EventQueue, SimTime};
use dwr_sim::net::Link;
use dwr_sim::{SimRng, SECOND};
use dwr_webgraph::dns::{DnsCache, DnsServer, DnsStats};
use dwr_webgraph::graph::{HostId, PageId};
use dwr_webgraph::qos::{FetchOutcome, QosConfig, QosModel};
use dwr_webgraph::sitemap::{RobotsPolicy, SitemapIndex};
use dwr_webgraph::SyntheticWeb;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Crawl parameters.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Number of crawling agents.
    pub agents: u32,
    /// Concurrent connections per agent ("several hundred TCP connections"
    /// in production; smaller here for simulation speed).
    pub connections_per_agent: usize,
    /// Minimum delay between accesses to one host.
    pub politeness_delay: SimTime,
    /// URL-exchange batch size.
    pub batch_size: usize,
    /// Seed every agent with the `k` most-cited URLs (0 disables
    /// suppression).
    pub most_cited_seed: usize,
    /// Link model for inter-agent messages.
    pub link: Link,
    /// Transient-failure retries before a URL is abandoned.
    pub max_retries: u32,
    /// Connection-timeout charged to a failed fetch attempt.
    pub failure_timeout: SimTime,
    /// Periodic exchange flush interval.
    pub flush_interval: SimTime,
    /// Server QoS configuration.
    pub qos: QosConfig,
    /// Deprecated single-crash script: crash this agent at this time,
    /// with no recovery. Kept for compatibility; internally lowered to
    /// [`AgentSchedule::single_crash`]. Ignored when [`CrawlConfig::faults`]
    /// is set — use `faults` for anything beyond the legacy scenario.
    pub crash: Option<(AgentId, SimTime)>,
    /// Schedule-driven agent churn: repeated crashes *and* recoveries.
    /// Takes precedence over [`CrawlConfig::crash`].
    pub faults: Option<AgentSchedule>,
    /// Record a per-fetch [`FetchSpan`] trace in the report (off by
    /// default: the trace grows with every attempt).
    pub record_trace: bool,
    /// Initial seed pages (page 0 of the first `seeds` hosts).
    pub seeds: usize,
    /// Fraction of hosts with a restrictive robots.txt.
    pub robots_restrictive_fraction: f64,
    /// Fraction of pages such hosts disallow.
    pub robots_disallow_fraction: f64,
    /// Fraction of hosts publishing sitemaps: one fetch from such a host
    /// discovers every page it serves (the sitemaps.org cooperation).
    pub sitemap_fraction: f64,
    /// Extra fetch latency when the agent's region differs from the
    /// host's (the geographic-crawling cost of \[13\]).
    pub cross_region_penalty: SimTime,
    /// Region of each agent (empty = all agents in region 0).
    pub agent_regions: Vec<u16>,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            agents: 4,
            connections_per_agent: 16,
            politeness_delay: 2 * SECOND,
            batch_size: 50,
            most_cited_seed: 0,
            link: Link::wan(),
            max_retries: 3,
            failure_timeout: 5 * SECOND,
            flush_interval: 10 * SECOND,
            qos: QosConfig::default(),
            crash: None,
            faults: None,
            record_trace: false,
            seeds: 8,
            robots_restrictive_fraction: 0.0,
            robots_disallow_fraction: 0.0,
            sitemap_fraction: 0.0,
            cross_region_penalty: 0,
            agent_regions: Vec::new(),
        }
    }
}

/// Fault-tolerance accounting of one crawl.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrawlFaultStats {
    /// Agent crashes applied.
    pub crashes: u64,
    /// Agent recoveries applied.
    pub recoveries: u64,
    /// Scheduled crashes refused because they would have killed the last
    /// live agent (the simulator never does).
    pub crashes_suppressed: u64,
    /// Host-ownership changes across all membership events — the
    /// consistent-hashing movement metric.
    pub hosts_moved: u64,
    /// In-flight fetches lost to crashes (wasted work).
    pub lost_inflight: u64,
    /// Pages whose fetch was lost in a crash and that were later fetched
    /// by another incarnation or agent.
    pub refetches: u64,
    /// Frontier-handoff batches delivered (one per receiving agent per
    /// membership event, plus deferred per-host handoffs).
    pub handoff_batches: u64,
    /// Unfetched URLs migrated inside handoff batches.
    pub handoff_urls: u64,
}

/// How one traced fetch attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The page was downloaded.
    Fetched,
    /// The attempt hit a transient failure.
    TransientFailure,
    /// The fetching agent crashed before the attempt finished.
    LostInCrash,
}

/// One fetch attempt in the optional event trace
/// ([`CrawlConfig::record_trace`]). The politeness invariant is provable
/// from the trace: per host, spans never overlap and consecutive spans
/// are at least `politeness_delay` apart — across agents and handoffs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchSpan {
    /// Fetching agent.
    pub agent: u32,
    /// Host contacted.
    pub host: HostId,
    /// Page requested.
    pub page: PageId,
    /// When the connection opened.
    pub start: SimTime,
    /// When the connection closed (fetch done, failure, or crash).
    pub end: SimTime,
    /// How the attempt ended.
    pub outcome: SpanOutcome,
}

/// Result of a simulated crawl.
#[derive(Debug, Clone)]
pub struct CrawlReport {
    /// Distinct pages fetched at least once.
    pub fetched_pages: u64,
    /// Fetches of pages already fetched before (crash recovery cost).
    pub duplicate_fetches: u64,
    /// All fetch attempts, including failures.
    pub attempts: u64,
    /// Attempts that hit a transient failure.
    pub transient_failures: u64,
    /// URLs abandoned after exhausting retries.
    pub abandoned: u64,
    /// Fraction of all pages fetched.
    pub coverage: f64,
    /// Simulated completion time.
    pub makespan: SimTime,
    /// Successful fetches per agent (cumulative across incarnations).
    pub per_agent_fetches: Vec<u64>,
    /// Aggregated URL-exchange traffic (all incarnations).
    pub exchange: ExchangeStats,
    /// Aggregated DNS cache statistics (all incarnations).
    pub dns: DnsStats,
    /// Total bytes downloaded.
    pub bytes_downloaded: u64,
    /// Discovered URLs skipped because robots.txt disallows them.
    pub robots_skipped: u64,
    /// Pages the robots policies permit fetching.
    pub allowed_pages: u64,
    /// Fraction of *allowed* pages fetched.
    pub coverage_allowed: f64,
    /// Pages first discovered through a sitemap rather than a link.
    pub sitemap_discoveries: u64,
    /// Fault-tolerance accounting (zeroes for fault-free runs).
    pub faults: CrawlFaultStats,
    /// Per-fetch trace (empty unless [`CrawlConfig::record_trace`]).
    pub trace: Vec<FetchSpan>,
}

/// Trace index meaning "not traced".
const NO_SPAN: u32 = u32::MAX;

#[derive(Debug)]
enum Event {
    /// A free connection slot of `agent` looks for work. `epoch` guards
    /// against slot tokens surviving a crash into the next incarnation.
    TryFetch { agent: u32, epoch: u32 },
    /// A fetch attempt finished. Stale if the agent crashed since
    /// (`epoch` mismatch): the crash already accounted the in-flight page.
    FetchDone {
        agent: u32,
        epoch: u32,
        host: HostId,
        page: PageId,
        outcome: FetchOutcome,
        span: u32,
    },
    /// A URL-exchange batch arrives (routed by the *current* assignment,
    /// so batches survive membership changes in transit).
    Deliver { urls: Vec<PageId> },
    /// Periodic buffer flush.
    FlushTick,
    /// Apply membership transition `idx` of the fault schedule, then
    /// (lazily) schedule the next one.
    Churn { idx: usize },
}

struct AgentState {
    frontier: Frontier,
    exchange: ExchangeBuffers,
    dns: DnsCache,
    idle_slots: usize,
    dead: bool,
    /// Incarnation counter, bumped at every crash. Events stamped with an
    /// older epoch are void: their slot token / in-flight page was
    /// accounted by the crash handler.
    epoch: u32,
    fetches: u64,
    /// Pages currently being fetched by this agent, with their trace
    /// index ([`NO_SPAN`] when tracing is off). Needed at crash time: the
    /// pending FetchDone events will be ignored, so the coordinator must
    /// re-allocate the pages (and the work accounting must not leak).
    in_flight: Vec<(HostId, PageId, u32)>,
}

/// The crawl simulator. Construct, then [`DistributedCrawl::run`].
/// Generic over an observability [`Recorder`] with the zero-cost
/// [`NoopRecorder`] as the default, mirroring the query tier's engines:
/// existing call sites compile unchanged and pay nothing.
pub struct DistributedCrawl<'w, A: UrlAssigner, R: Recorder = NoopRecorder> {
    web: &'w SyntheticWeb,
    assigner: A,
    cfg: CrawlConfig,
    rng: SimRng,
    recorder: R,
}

impl<'w, A: UrlAssigner> DistributedCrawl<'w, A> {
    /// Create a simulator over `web` with the given assignment policy.
    pub fn new(web: &'w SyntheticWeb, assigner: A, cfg: CrawlConfig, seed: u64) -> Self {
        assert!(cfg.agents > 0 && cfg.connections_per_agent > 0);
        DistributedCrawl { web, assigner, cfg, rng: SimRng::new(seed), recorder: NoopRecorder }
    }
}

impl<'w, A: UrlAssigner, R: Recorder> DistributedCrawl<'w, A, R> {
    /// Attach a live recorder (e.g. `Arc<ObsRecorder>` built from
    /// `ObsConfig::crawl_tier()`), consuming this simulator and returning
    /// one that emits crawl fault events.
    pub fn with_obs<R2: Recorder>(self, recorder: R2) -> DistributedCrawl<'w, A, R2> {
        DistributedCrawl {
            web: self.web,
            assigner: self.assigner,
            cfg: self.cfg,
            rng: self.rng,
            recorder,
        }
    }

    /// Run the crawl to completion and report.
    ///
    /// Work accounting invariant: a URL is *outstanding* from the moment
    /// it enters a frontier or an exchange buffer until it is fetched,
    /// abandoned, or deduplicated away. The flush timer keeps ticking while
    /// anything is outstanding, so buffered URLs can never be stranded —
    /// and every handoff path adjusts the count by exactly the URLs that
    /// evaporate in dedup.
    pub fn run(self) -> CrawlReport {
        let n = self.cfg.agents as usize;
        // Lower the deprecated single-crash field onto the schedule path
        // so both share one implementation.
        let transitions: Vec<Transition> = match (&self.cfg.faults, self.cfg.crash) {
            (Some(s), _) => s.transitions(),
            (None, Some((agent, at))) => AgentSchedule::single_crash(n, agent, at).transitions(),
            (None, None) => Vec::new(),
        }
        .into_iter()
        .filter(|t| (t.agent.0 as usize) < n)
        .collect();

        let qos = QosModel::new(
            self.web.num_hosts(),
            self.cfg.qos,
            self.rng.fork_named("qos").next_u64(),
        );
        let known: HashSet<PageId> =
            self.web.most_cited(self.cfg.most_cited_seed).into_iter().collect();
        let robots = RobotsPolicy::generate(
            self.web,
            self.cfg.robots_restrictive_fraction,
            self.cfg.robots_disallow_fraction,
            self.rng.fork_named("robots").next_u64(),
        );
        let sitemaps = SitemapIndex::generate(
            self.web,
            self.cfg.sitemap_fraction,
            self.rng.fork_named("sitemaps").next_u64(),
        );
        let link_rng = self.rng.fork_named("link");

        let mut sim = Sim {
            web: self.web,
            assigner: self.assigner,
            cfg: self.cfg,
            recorder: self.recorder,
            rng: self.rng,
            qos,
            robots,
            sitemaps,
            known,
            agents: Vec::new(),
            queue: EventQueue::new(),
            link_rng,
            transitions,
            fetched: HashSet::new(),
            retry_count: HashMap::new(),
            sitemap_served: HashSet::new(),
            fetching: HashMap::new(),
            lost_pages: HashSet::new(),
            trace: Vec::new(),
            fstats: CrawlFaultStats::default(),
            retired_exchange: ExchangeStats::default(),
            retired_dns: DnsStats::default(),
            duplicates: 0,
            attempts: 0,
            failures: 0,
            abandoned: 0,
            bytes: 0,
            robots_skipped: 0,
            sitemap_discoveries: 0,
            outstanding: 0,
            flush_scheduled: true,
            makespan: 0,
        };
        sim.agents = (0..n).map(|i| sim.make_agent(i, 0)).collect();
        sim.run()
    }
}

/// All live state of one simulation run, so crash / recovery / handoff
/// logic can be real methods instead of one monolithic event loop.
struct Sim<'w, A: UrlAssigner, R: Recorder> {
    web: &'w SyntheticWeb,
    assigner: A,
    cfg: CrawlConfig,
    recorder: R,
    rng: SimRng,
    qos: QosModel,
    robots: RobotsPolicy,
    sitemaps: SitemapIndex,
    known: HashSet<PageId>,
    agents: Vec<AgentState>,
    queue: EventQueue<Event>,
    link_rng: SimRng,
    transitions: Vec<Transition>,
    fetched: HashSet<PageId>,
    retry_count: HashMap<PageId, u32>,
    sitemap_served: HashSet<HostId>,
    /// Host → agent with the host's one allowed connection currently
    /// open. The global politeness arbiter across ownership transfers.
    fetching: HashMap<HostId, u32>,
    /// Pages whose in-flight fetch a crash destroyed; a later successful
    /// fetch counts as a refetch (crash-induced rework).
    lost_pages: HashSet<PageId>,
    trace: Vec<FetchSpan>,
    fstats: CrawlFaultStats,
    /// Stats of incarnations retired by recovery rebuilds.
    retired_exchange: ExchangeStats,
    retired_dns: DnsStats,
    duplicates: u64,
    attempts: u64,
    failures: u64,
    abandoned: u64,
    bytes: u64,
    robots_skipped: u64,
    sitemap_discoveries: u64,
    outstanding: i64,
    flush_scheduled: bool,
    /// Completion time of the last *productive* event — churn ticks that
    /// fire after the crawl drained do not stretch the makespan.
    makespan: SimTime,
}

impl<'w, A: UrlAssigner, R: Recorder> Sim<'w, A, R> {
    /// A fresh agent state. `epoch` 0 reproduces the historical DNS
    /// stream exactly; recovered incarnations fork a new one (a rebuilt
    /// resolver cache has no reason to replay its predecessor's timings).
    fn make_agent(&self, i: usize, epoch: u32) -> AgentState {
        let base = self.rng.fork(i as u64).fork_named("dns");
        let dns_rng = if epoch == 0 { base } else { base.fork(u64::from(epoch)) };
        AgentState {
            frontier: Frontier::new(self.cfg.politeness_delay),
            exchange: ExchangeBuffers::new(self.cfg.batch_size, self.known.clone()),
            dns: DnsCache::new(DnsServer::typical(dns_rng), 3_600 * SECOND, 10_000),
            idle_slots: self.cfg.connections_per_agent,
            dead: false,
            epoch,
            fetches: 0,
            in_flight: Vec::new(),
        }
    }

    /// Hand `agent` a connection slot if one is idle.
    fn wake(&mut self, agent: u32, now: SimTime) {
        let a = &mut self.agents[agent as usize];
        if !a.dead && a.idle_slots > 0 {
            a.idle_slots -= 1;
            let epoch = a.epoch;
            self.queue.schedule_at(now, Event::TryFetch { agent, epoch });
        }
    }

    /// Ship an exchange batch over the link model.
    fn send_batch(&mut self, now: SimTime, batch: Vec<PageId>) {
        let lat = self.cfg.link.transfer_time_jittered(
            crate::exchange::BYTES_PER_MESSAGE
                + batch.len() as u64 * crate::exchange::BYTES_PER_URL,
            &mut self.link_rng,
        );
        self.queue.schedule_at(now + lat, Event::Deliver { urls: batch });
    }

    /// Owner of every host under the current assignment, in
    /// `web.host_ids()` order — diffed around membership changes.
    fn owners_snapshot(&self) -> Vec<AgentId> {
        self.web.host_ids().map(|h| self.assigner.agent_for(h, self.web)).collect()
    }

    fn run(mut self) -> CrawlReport {
        // Seed: the first page of the first `seeds` hosts plus the
        // most-cited set (which every agent knows from a previous crawl).
        let mut seed_pages: Vec<PageId> = (0..self.cfg.seeds.min(self.web.num_hosts()))
            .map(|h| self.web.pages_of_host(HostId(h as u32))[0])
            .collect();
        seed_pages.extend(self.known.iter().copied());
        seed_pages.sort_unstable();
        seed_pages.dedup();
        for p in seed_pages {
            if !self.robots.allowed(p, self.web) {
                self.robots_skipped += 1;
                continue;
            }
            let host = self.web.page(p).host;
            let owner = self.assigner.agent_for(host, self.web);
            if self.agents[owner.0 as usize].frontier.offer(host, p, 0) {
                self.outstanding += 1;
            }
        }
        for (i, a) in self.agents.iter_mut().enumerate() {
            for _ in 0..a.idle_slots {
                self.queue.schedule_at(0, Event::TryFetch { agent: i as u32, epoch: 0 });
            }
            a.idle_slots = 0;
        }
        if let Some(t) = self.transitions.first() {
            self.queue.schedule_at(t.at, Event::Churn { idx: 0 });
        }
        self.queue.schedule_at(self.cfg.flush_interval, Event::FlushTick);

        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Event::TryFetch { agent, epoch } => {
                    self.makespan = now;
                    self.on_try_fetch(now, agent, epoch);
                }
                Event::FetchDone { agent, epoch, host, page, outcome, span } => {
                    self.makespan = now;
                    self.on_fetch_done(now, agent, epoch, host, page, outcome, span);
                }
                Event::Deliver { urls } => {
                    self.makespan = now;
                    self.route_urls(now, urls);
                }
                Event::FlushTick => {
                    self.makespan = now;
                    self.on_flush(now);
                }
                Event::Churn { idx } => {
                    // Once the crawl has drained, the rest of the fault
                    // schedule is irrelevant: stop churning rather than
                    // inflating the makespan to the schedule horizon.
                    if self.outstanding > 0 {
                        self.makespan = now;
                        self.on_churn(now, idx);
                    }
                }
            }
            // Safety net: re-arm the flush timer when buffered work exists
            // but no tick is pending (e.g. everything became buffered right
            // after the last tick fired and decided not to re-arm).
            if !self.flush_scheduled && self.outstanding > 0 && self.queue.is_empty() {
                self.queue.schedule_at(now + self.cfg.flush_interval, Event::FlushTick);
                self.flush_scheduled = true;
            }
        }

        let allowed_pages = self.robots.allowed_count(self.web) as u64;
        let exchange = self.agents.iter().fold(self.retired_exchange, |acc, a| {
            let s = a.exchange.stats();
            ExchangeStats {
                offered: acc.offered + s.offered,
                suppressed: acc.suppressed + s.suppressed,
                sent_urls: acc.sent_urls + s.sent_urls,
                messages: acc.messages + s.messages,
                bytes: acc.bytes + s.bytes,
            }
        });
        let dns = self.agents.iter().fold(self.retired_dns, |acc, a| {
            let s = a.dns.stats();
            DnsStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                total_lookup_time: acc.total_lookup_time + s.total_lookup_time,
            }
        });
        CrawlReport {
            fetched_pages: self.fetched.len() as u64,
            duplicate_fetches: self.duplicates,
            attempts: self.attempts,
            transient_failures: self.failures,
            abandoned: self.abandoned,
            coverage: self.fetched.len() as f64 / self.web.num_pages() as f64,
            makespan: self.makespan,
            per_agent_fetches: self.agents.iter().map(|a| a.fetches).collect(),
            exchange,
            dns,
            bytes_downloaded: self.bytes,
            robots_skipped: self.robots_skipped,
            allowed_pages,
            coverage_allowed: self.fetched.len() as f64 / allowed_pages.max(1) as f64,
            sitemap_discoveries: self.sitemap_discoveries,
            faults: self.fstats,
            trace: self.trace,
        }
    }

    fn on_try_fetch(&mut self, now: SimTime, agent: u32, epoch: u32) {
        {
            let a = &self.agents[agent as usize];
            if a.dead || a.epoch != epoch {
                return; // slot token from a crashed incarnation
            }
        }
        match self.agents[agent as usize].frontier.next_fetch(now) {
            Ok((host, page)) => {
                let span = if self.cfg.record_trace {
                    self.trace.push(FetchSpan {
                        agent,
                        host,
                        page,
                        start: now,
                        end: now,
                        outcome: SpanOutcome::LostInCrash,
                    });
                    (self.trace.len() - 1) as u32
                } else {
                    NO_SPAN
                };
                debug_assert!(
                    !self.fetching.contains_key(&host),
                    "two simultaneous connections to one host"
                );
                self.fetching.insert(host, agent);
                self.attempts += 1;
                let dns_latency = self.agents[agent as usize].dns.resolve(host, now);
                let region_penalty = match self.cfg.agent_regions.get(agent as usize) {
                    Some(&r) if r != self.web.host(host).region => self.cfg.cross_region_penalty,
                    _ => 0,
                };
                let (outcome, duration) =
                    match self.qos.fetch(host, u64::from(self.web.page(page).size_bytes)) {
                        FetchOutcome::Ok(t) => (FetchOutcome::Ok(t), t),
                        FetchOutcome::TransientFailure => {
                            (FetchOutcome::TransientFailure, self.cfg.failure_timeout)
                        }
                    };
                self.agents[agent as usize].in_flight.push((host, page, span));
                self.queue.schedule_at(
                    now + dns_latency + duration + region_penalty,
                    Event::FetchDone { agent, epoch, host, page, outcome, span },
                );
            }
            Err(Some(at)) => self.queue.schedule_at(at, Event::TryFetch { agent, epoch }),
            Err(None) => self.agents[agent as usize].idle_slots += 1,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_fetch_done(
        &mut self,
        now: SimTime,
        agent: u32,
        epoch: u32,
        host: HostId,
        page: PageId,
        outcome: FetchOutcome,
        span: u32,
    ) {
        {
            let a = &self.agents[agent as usize];
            if a.dead || a.epoch != epoch {
                // The agent crashed mid-fetch; the crash handler already
                // re-allocated the page and closed the span.
                return;
            }
        }
        self.agents[agent as usize].in_flight.retain(|&(h, p, _)| (h, p) != (host, page));
        self.fetching.remove(&host);
        match outcome {
            FetchOutcome::Ok(_) => {
                if span != NO_SPAN {
                    let s = &mut self.trace[span as usize];
                    s.end = now;
                    s.outcome = SpanOutcome::Fetched;
                }
                self.agents[agent as usize].frontier.complete(host, now);
                self.agents[agent as usize].fetches += 1;
                self.outstanding -= 1;
                self.bytes += u64::from(self.web.page(page).size_bytes);
                if !self.fetched.insert(page) {
                    self.duplicates += 1;
                }
                if self.lost_pages.remove(&page) {
                    self.fstats.refetches += 1;
                    self.recorder.record(ObsEvent::CrawlRefetch { agent, now });
                }
                // First successful contact with a sitemap host discovers
                // every allowed page it serves.
                if self.sitemaps.has(host) && self.sitemap_served.insert(host) {
                    for &p in self.web.pages_of_host(host) {
                        if !self.robots.allowed(p, self.web) {
                            continue;
                        }
                        if self.agents[agent as usize].frontier.offer(host, p, now) {
                            self.outstanding += 1;
                            self.sitemap_discoveries += 1;
                            self.wake(agent, now);
                        }
                    }
                }
                let links: Vec<PageId> = self.web.outlinks(page).to_vec();
                for target in links {
                    if !self.robots.allowed(target, self.web) {
                        self.robots_skipped += 1;
                        continue;
                    }
                    let t_host = self.web.page(target).host;
                    let owner = self.assigner.agent_for(t_host, self.web);
                    if owner.0 == agent {
                        if self.agents[agent as usize].frontier.offer(t_host, target, now) {
                            self.outstanding += 1;
                            self.wake(agent, now);
                        }
                    } else {
                        let a = &mut self.agents[agent as usize];
                        let suppressed_before = a.exchange.stats().suppressed;
                        let maybe_batch = a.exchange.offer(owner, target);
                        if a.exchange.stats().suppressed == suppressed_before {
                            // Entered the exchange system.
                            self.outstanding += 1;
                        }
                        if let Some(batch) = maybe_batch {
                            self.send_batch(now, batch);
                        }
                    }
                }
                self.queue.schedule_at(now, Event::TryFetch { agent, epoch });
            }
            FetchOutcome::TransientFailure => {
                if span != NO_SPAN {
                    let s = &mut self.trace[span as usize];
                    s.end = now;
                    s.outcome = SpanOutcome::TransientFailure;
                }
                self.failures += 1;
                let count = self.retry_count.entry(page).or_insert(0);
                *count += 1;
                if *count <= self.cfg.max_retries {
                    let backoff = self.qos.retry_backoff();
                    self.agents[agent as usize].frontier.retry_later(host, page, now, backoff);
                } else {
                    self.agents[agent as usize].frontier.complete(host, now);
                    self.abandoned += 1;
                    self.outstanding -= 1;
                }
                self.queue.schedule_at(now, Event::TryFetch { agent, epoch });
            }
        }
        // Rule 2 — deferred handoff: if ownership of `host` moved away
        // while this agent had its connection open, migrate the host's
        // remaining queue now that the connection closed. The politeness
        // clock this agent just set travels along, so the new owner can
        // never contact the host early.
        let owner = self.assigner.agent_for(host, self.web);
        if owner.0 != agent {
            let (pages, na) = self.agents[agent as usize].frontier.extract_host(host);
            let offered = pages.len();
            let floor = na.unwrap_or(now + self.cfg.politeness_delay);
            let dst = &mut self.agents[owner.0 as usize];
            let installed = dst.frontier.install_host(host, pages, Some(floor), now);
            dst.frontier.unblock(host, floor);
            self.outstanding -= (offered - installed) as i64;
            if installed > 0 {
                self.fstats.handoff_batches += 1;
                self.fstats.handoff_urls += installed as u64;
                self.recorder.record(ObsEvent::CrawlHandoff {
                    to: owner.0,
                    now,
                    hosts: 1,
                    urls: installed as u64,
                });
            }
            self.wake(owner.0, now);
        }
    }

    /// Deliver exchanged URLs, each to its host's *current* owner.
    fn route_urls(&mut self, now: SimTime, urls: Vec<PageId>) {
        for url in urls {
            let host = self.web.page(url).host;
            let owner = self.assigner.agent_for(host, self.web);
            if self.agents[owner.0 as usize].frontier.offer(host, url, now) {
                self.wake(owner.0, now);
            } else {
                // Known URL: the work item evaporates.
                self.outstanding -= 1;
            }
        }
    }

    fn on_flush(&mut self, now: SimTime) {
        self.flush_scheduled = false;
        for i in 0..self.agents.len() {
            if self.agents[i].dead {
                continue;
            }
            let flushes = self.agents[i].exchange.flush_all();
            for (_dest, batch) in flushes {
                self.send_batch(now, batch);
            }
        }
        if self.outstanding > 0 {
            self.queue.schedule_at(now + self.cfg.flush_interval, Event::FlushTick);
            self.flush_scheduled = true;
        }
    }

    fn on_churn(&mut self, now: SimTime, idx: usize) {
        let t = self.transitions[idx];
        if t.down {
            self.on_crash(now, t.agent.0);
        } else {
            self.on_recover(now, t.agent.0);
        }
        if idx + 1 < self.transitions.len() && self.outstanding > 0 {
            self.queue.schedule_at(self.transitions[idx + 1].at, Event::Churn { idx: idx + 1 });
        }
    }

    fn on_crash(&mut self, now: SimTime, agent: u32) {
        if self.agents[agent as usize].dead {
            return;
        }
        let before = self.owners_snapshot();
        if !self.assigner.remove_agent(AgentId(agent)) {
            // Refused: removing the last live agent (or one the assigner
            // does not know). The agent survives — a crawl with every
            // agent down can never finish.
            self.fstats.crashes_suppressed += 1;
            return;
        }
        self.fstats.crashes += 1;

        // The crash destroys in-flight fetches: charge them as lost work
        // and remember the pages so the new owners re-enqueue them behind
        // a full politeness interval (the half-open connection still
        // counts against the host's access clock).
        let inflight: Vec<(HostId, PageId, u32)> = {
            let a = &mut self.agents[agent as usize];
            a.dead = true;
            a.idle_slots = 0;
            a.epoch += 1; // void every queued TryFetch / FetchDone
            a.in_flight.drain(..).collect()
        };
        let mut lost_by_host: BTreeMap<HostId, Vec<PageId>> = BTreeMap::new();
        let lost = inflight.len() as u64;
        for (h, p, span) in inflight {
            self.fetching.remove(&h);
            self.fstats.lost_inflight += 1;
            self.lost_pages.insert(p);
            lost_by_host.entry(h).or_default().push(p);
            if span != NO_SPAN {
                let s = &mut self.trace[span as usize];
                s.end = now;
                s.outcome = SpanOutcome::LostInCrash;
            }
        }
        self.recorder.record(ObsEvent::CrawlCrash { agent, now, lost_inflight: lost });

        let (moved, mut batches) = self.apply_reassignment(&before, now, &mut lost_by_host);

        // Defensive sweep: queues still sitting on the crashed agent for
        // hosts whose *assignment* did not change (it lost their
        // ownership earlier via a deferred handoff it never completed).
        let leftover_hosts = self.agents[agent as usize].frontier.host_ids();
        for h in leftover_hosts {
            let (pages, na) = self.agents[agent as usize].frontier.extract_host(h);
            if pages.is_empty() {
                continue;
            }
            let owner = self.assigner.agent_for(h, self.web);
            let lost = lost_by_host.remove(&h).unwrap_or_default();
            let mut floor = na;
            if !lost.is_empty() {
                let f = now + self.cfg.politeness_delay;
                floor = Some(floor.map_or(f, |x| x.max(f)));
            }
            let offered = pages.len() + lost.len();
            let installed = self.agents[owner.0 as usize].frontier.install_host(
                h,
                pages.into_iter().chain(lost),
                floor,
                now,
            );
            match self.fetching.get(&h).copied() {
                Some(g) if g != owner.0 => self.agents[owner.0 as usize].frontier.block(h),
                Some(_) => {} // the owner's own open fetch clears busy on completion
                None => {
                    // The owner may still be blocked by a deferred handoff
                    // whose fetcher just died with this queue: lift it, or
                    // these URLs wait forever.
                    let at = floor.unwrap_or(now);
                    self.agents[owner.0 as usize].frontier.unblock(h, at);
                }
            }
            self.outstanding -= (offered - installed) as i64;
            if installed > 0 {
                let e = batches.entry(owner.0).or_insert((0, 0));
                e.0 += 1;
                e.1 += installed as u64;
            }
            self.wake(owner.0, now);
        }

        // In-flight pages on hosts that kept their (already-moved) owner:
        // the crashed connection is gone, so lift any deferred-handoff
        // block at the owner and re-enqueue behind a politeness interval.
        let remaining: Vec<(HostId, Vec<PageId>)> =
            std::mem::take(&mut lost_by_host).into_iter().collect();
        for (h, pages) in remaining {
            let owner = self.assigner.agent_for(h, self.web);
            let floor = now + self.cfg.politeness_delay;
            let offered = pages.len();
            let o = &mut self.agents[owner.0 as usize];
            let installed = o.frontier.install_host(h, pages, Some(floor), now);
            if self.fetching.contains_key(&h) {
                o.frontier.block(h);
            } else {
                o.frontier.unblock(h, floor);
            }
            self.outstanding -= (offered - installed) as i64;
            if installed > 0 {
                let e = batches.entry(owner.0).or_insert((0, 0));
                e.0 += 1;
                e.1 += installed as u64;
            }
            self.wake(owner.0, now);
        }

        // Undelivered outgoing exchange buffers are recalled by the
        // coordinator and re-routed to the hosts' current owners.
        let recalled = self.agents[agent as usize].exchange.recall_all();
        for (_dest, urls) in recalled {
            self.route_urls(now, urls);
        }

        self.finish_membership_change(now, moved, batches);
    }

    fn on_recover(&mut self, now: SimTime, agent: u32) {
        if !self.agents[agent as usize].dead {
            return; // the matching crash was suppressed
        }
        self.fstats.recoveries += 1;
        // Retire the dead incarnation: fold its traffic counters into the
        // accumulators, then rebuild state from scratch — the DNS cache
        // and exchange buffers did not survive the crash.
        let (ex, dn, epoch, fetches) = {
            let a = &self.agents[agent as usize];
            (a.exchange.stats(), a.dns.stats(), a.epoch, a.fetches)
        };
        self.retired_exchange = ExchangeStats {
            offered: self.retired_exchange.offered + ex.offered,
            suppressed: self.retired_exchange.suppressed + ex.suppressed,
            sent_urls: self.retired_exchange.sent_urls + ex.sent_urls,
            messages: self.retired_exchange.messages + ex.messages,
            bytes: self.retired_exchange.bytes + ex.bytes,
        };
        self.retired_dns = DnsStats {
            hits: self.retired_dns.hits + dn.hits,
            misses: self.retired_dns.misses + dn.misses,
            total_lookup_time: self.retired_dns.total_lookup_time + dn.total_lookup_time,
        };
        let mut fresh = self.make_agent(agent as usize, epoch);
        fresh.fetches = fetches; // per-agent totals span incarnations
        self.agents[agent as usize] = fresh;

        let before = self.owners_snapshot();
        let added = self.assigner.add_agent(AgentId(agent));
        debug_assert!(added, "recovering an agent the assigner already has");
        self.recorder.record(ObsEvent::CrawlRecover { agent, now });

        let mut lost_by_host = BTreeMap::new();
        let (moved, batches) = self.apply_reassignment(&before, now, &mut lost_by_host);
        self.finish_membership_change(now, moved, batches);

        // Bring the recovered incarnation's connection pool online.
        let slots = {
            let a = &mut self.agents[agent as usize];
            let s = a.idle_slots;
            a.idle_slots = 0;
            s
        };
        for _ in 0..slots {
            self.queue.schedule_at(now, Event::TryFetch { agent, epoch });
        }
    }

    /// Diff host ownership against `before` and migrate every moved
    /// host's frontier state to its new owner — except hosts whose old
    /// owner still has the connection open (rule 2: block the new owner
    /// and let `FetchDone` complete the migration). Returns the number
    /// of moved hosts and per-destination handoff batch sizes.
    fn apply_reassignment(
        &mut self,
        before: &[AgentId],
        now: SimTime,
        lost_by_host: &mut BTreeMap<HostId, Vec<PageId>>,
    ) -> (u64, BTreeMap<u32, (u64, u64)>) {
        let mut moved = 0u64;
        let mut batches: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        let hosts: Vec<HostId> = self.web.host_ids().collect();
        for (idx, &h) in hosts.iter().enumerate() {
            let old = before[idx];
            let new = self.assigner.agent_for(h, self.web);
            if new == old {
                continue;
            }
            moved += 1;
            if self.fetching.get(&h) == Some(&old.0) {
                // The old owner (still alive) has the host's one allowed
                // connection open: defer. Its FetchDone migrates the
                // queue and lifts this block.
                self.agents[new.0 as usize].frontier.block(h);
                continue;
            }
            let (pages, na) = self.agents[old.0 as usize].frontier.extract_host(h);
            let lost = lost_by_host.remove(&h).unwrap_or_default();
            let mut floor = na;
            if !lost.is_empty() {
                let f = now + self.cfg.politeness_delay;
                floor = Some(floor.map_or(f, |x| x.max(f)));
            }
            let offered = pages.len() + lost.len();
            let dst = &mut self.agents[new.0 as usize];
            let installed = dst.frontier.install_host(h, pages.into_iter().chain(lost), floor, now);
            if self.fetching.get(&h).is_some_and(|&g| g != new.0) {
                // A third agent (an earlier deferred handoff) still holds
                // the connection: the new owner inherits the block.
                dst.frontier.block(h);
            }
            self.outstanding -= (offered - installed) as i64;
            if installed > 0 {
                let e = batches.entry(new.0).or_insert((0, 0));
                e.0 += 1;
                e.1 += installed as u64;
                self.wake(new.0, now);
            }
        }
        (moved, batches)
    }

    fn finish_membership_change(
        &mut self,
        now: SimTime,
        moved: u64,
        batches: BTreeMap<u32, (u64, u64)>,
    ) {
        self.fstats.hosts_moved += moved;
        self.recorder.record(ObsEvent::CrawlReassign { now, hosts_moved: moved });
        for (to, (hosts, urls)) in batches {
            if urls == 0 {
                continue;
            }
            self.fstats.handoff_batches += 1;
            self.fstats.handoff_urls += urls;
            self.recorder.record(ObsEvent::CrawlHandoff { to, now, hosts, urls });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{ConsistentHashAssigner, HashAssigner};
    use dwr_avail::failure::UpDownProcess;
    use dwr_obs::{ObsConfig, ObsRecorder};
    use dwr_sim::MINUTE;
    use dwr_webgraph::generate::{generate_web, WebConfig};
    use std::sync::Arc;

    fn tiny_web() -> SyntheticWeb {
        let mut cfg = WebConfig::tiny();
        cfg.num_pages = 800;
        cfg.num_hosts = 40;
        generate_web(&cfg, 77)
    }

    fn fast_cfg() -> CrawlConfig {
        CrawlConfig {
            agents: 4,
            connections_per_agent: 8,
            politeness_delay: SECOND / 2,
            batch_size: 20,
            most_cited_seed: 0,
            qos: QosConfig { flaky_fraction: 0.0, slow_fraction: 0.0, ..QosConfig::default() },
            ..CrawlConfig::default()
        }
    }

    #[test]
    fn crawl_reaches_high_coverage() {
        let web = tiny_web();
        let crawl = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 1);
        let r = crawl.run();
        // The giant component of a PA graph is most of it; seeds cover the
        // rest only partially (isolated hosts stay uncrawled).
        assert!(r.coverage > 0.6, "coverage={}", r.coverage);
        assert_eq!(r.duplicate_fetches, 0);
        assert!(r.makespan > 0);
        assert_eq!(r.per_agent_fetches.iter().sum::<u64>(), r.fetched_pages);
        assert_eq!(r.faults, CrawlFaultStats::default(), "fault-free run");
        assert!(r.trace.is_empty(), "tracing off by default");
    }

    #[test]
    fn deterministic_given_seed() {
        let web = tiny_web();
        let a = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 5).run();
        let b = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 5).run();
        assert_eq!(a.fetched_pages, b.fetched_pages);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.exchange, b.exchange);
    }

    #[test]
    fn most_cited_seeding_cuts_exchange_traffic() {
        let web = tiny_web();
        let base = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 7).run();
        let mut cfg = fast_cfg();
        cfg.most_cited_seed = 50;
        let seeded = DistributedCrawl::new(&web, HashAssigner::new(4), cfg, 7).run();
        assert!(
            seeded.exchange.sent_urls < base.exchange.sent_urls,
            "seeded={} base={}",
            seeded.exchange.sent_urls,
            base.exchange.sent_urls
        );
        assert!(seeded.exchange.suppressed > 0);
        // Coverage must not suffer.
        assert!(seeded.coverage >= base.coverage - 0.05);
    }

    #[test]
    fn transient_failures_are_retried() {
        let web = tiny_web();
        let mut cfg = fast_cfg();
        cfg.qos.flaky_fraction = 0.3;
        cfg.qos.flaky_failure_prob = 0.4;
        let r = DistributedCrawl::new(&web, HashAssigner::new(4), cfg, 9).run();
        assert!(r.transient_failures > 0);
        // Retries keep coverage up despite failures.
        assert!(r.coverage > 0.5, "coverage={}", r.coverage);
        assert!(r.attempts > r.fetched_pages);
    }

    #[test]
    fn crash_recovery_preserves_coverage() {
        let web = tiny_web();
        let baseline =
            DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), fast_cfg(), 11).run();
        let mut cfg = fast_cfg();
        cfg.crash = Some((AgentId(2), baseline.makespan / 4));
        let crashed =
            DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), cfg, 11).run();
        assert!(
            crashed.coverage > baseline.coverage - 0.1,
            "crashed={} baseline={}",
            crashed.coverage,
            baseline.coverage
        );
        // The dead agent stops fetching.
        assert!(crashed.per_agent_fetches[2] < baseline.per_agent_fetches[2]);
        assert_eq!(crashed.faults.crashes, 1);
        assert_eq!(crashed.faults.recoveries, 0, "the legacy crash never recovers");
        assert!(crashed.faults.hosts_moved > 0, "agent 2's hosts must move");
    }

    #[test]
    fn legacy_crash_field_equals_single_crash_schedule() {
        let web = tiny_web();
        let at = 30 * SECOND;
        let mut via_field = fast_cfg();
        via_field.crash = Some((AgentId(1), at));
        let mut via_schedule = fast_cfg();
        via_schedule.faults = Some(AgentSchedule::single_crash(4, AgentId(1), at));
        let a =
            DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), via_field, 31).run();
        let b =
            DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), via_schedule, 31).run();
        assert_eq!(a.fetched_pages, b.fetched_pages);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.exchange, b.exchange);
        assert_eq!(a.faults, b.faults, "the two spellings share one implementation");
    }

    #[test]
    fn churn_with_recoveries_completes_and_accounts() {
        let web = tiny_web();
        let baseline =
            DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), fast_cfg(), 41).run();
        let mut cfg = fast_cfg();
        // Aggressive flapping over the whole crawl: mean up 40 s, down 10 s.
        let process = UpDownProcess::exponential(40 * SECOND, 10 * SECOND);
        cfg.faults = Some(AgentSchedule::generate(4, &process, baseline.makespan * 4, 41));
        let churned =
            DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), cfg, 41).run();
        let f = churned.faults;
        assert!(f.crashes >= 2, "schedule should crash repeatedly: {f:?}");
        assert!(f.recoveries >= 1, "and recover at least once: {f:?}");
        assert!(f.hosts_moved > 0);
        assert!(
            churned.coverage > baseline.coverage - 0.1,
            "churned={} baseline={}",
            churned.coverage,
            baseline.coverage
        );
        assert!(
            churned.makespan <= baseline.makespan * 10,
            "churn must not stall the crawl: {} vs baseline {}",
            churned.makespan,
            baseline.makespan
        );
    }

    #[test]
    fn obs_counters_match_offline_fault_stats() {
        let web = tiny_web();
        let mut cfg = fast_cfg();
        let process = UpDownProcess::exponential(30 * SECOND, 8 * SECOND);
        cfg.faults = Some(AgentSchedule::generate(4, &process, 10 * MINUTE, 51));
        let rec = Arc::new(ObsRecorder::new(ObsConfig::crawl_tier()));
        let r = DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), cfg, 51)
            .with_obs(Arc::clone(&rec))
            .run();
        let snap = rec.snapshot();
        let f = r.faults;
        assert!(f.crashes > 0, "need at least one crash for the cross-check: {f:?}");
        assert_eq!(snap.counter("crawl.crashes"), Some(f.crashes));
        assert_eq!(snap.counter("crawl.recoveries"), Some(f.recoveries));
        assert_eq!(snap.counter("crawl.lost_inflight"), Some(f.lost_inflight));
        assert_eq!(snap.counter("crawl.hosts_moved"), Some(f.hosts_moved));
        assert_eq!(snap.counter("crawl.handoff_batches"), Some(f.handoff_batches));
        assert_eq!(snap.counter("crawl.handoff_urls"), Some(f.handoff_urls));
        assert_eq!(snap.counter("crawl.refetches"), Some(f.refetches));
    }

    #[test]
    fn trace_spans_close_and_account_lost_work() {
        let web = tiny_web();
        let mut cfg = fast_cfg();
        cfg.record_trace = true;
        let process = UpDownProcess::exponential(25 * SECOND, 6 * SECOND);
        cfg.faults = Some(AgentSchedule::generate(4, &process, 10 * MINUTE, 61));
        let r = DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), cfg, 61).run();
        assert_eq!(r.trace.len() as u64, r.attempts, "one span per attempt");
        let lost = r.trace.iter().filter(|s| s.outcome == SpanOutcome::LostInCrash).count();
        assert_eq!(lost as u64, r.faults.lost_inflight, "lost spans = lost in-flight fetches");
        let ok = r.trace.iter().filter(|s| s.outcome == SpanOutcome::Fetched).count();
        assert_eq!(ok as u64, r.fetched_pages + r.duplicate_fetches);
        assert!(r.trace.iter().all(|s| s.end >= s.start));
    }

    #[test]
    fn last_live_agent_is_never_killed() {
        let web = tiny_web();
        let mut cfg = fast_cfg();
        cfg.agents = 2;
        // Both agents scheduled to die early and never recover.
        cfg.faults = Some(AgentSchedule::from_intervals(
            vec![
                vec![dwr_avail::failure::DownInterval { start: 5 * SECOND, end: SimTime::MAX }],
                vec![dwr_avail::failure::DownInterval { start: 6 * SECOND, end: SimTime::MAX }],
            ],
            SimTime::MAX,
        ));
        let r = DistributedCrawl::new(&web, ConsistentHashAssigner::new(2, 64), cfg, 71).run();
        assert_eq!(r.faults.crashes, 1, "only the first crash lands");
        assert_eq!(r.faults.crashes_suppressed, 1, "the second would kill the pool");
        assert!(r.coverage > 0.5, "the survivor finishes the crawl: {}", r.coverage);
    }

    #[test]
    fn dns_cache_hits_dominate() {
        let web = tiny_web();
        let r = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 13).run();
        // Many pages per host ⇒ most lookups are repeat lookups.
        assert!(r.dns.hit_ratio() > 0.7, "dns hit ratio {}", r.dns.hit_ratio());
    }

    #[test]
    fn robots_exclusion_is_respected() {
        let web = tiny_web();
        let mut cfg = fast_cfg();
        cfg.robots_restrictive_fraction = 1.0;
        cfg.robots_disallow_fraction = 0.4;
        let r = DistributedCrawl::new(&web, HashAssigner::new(4), cfg, 21).run();
        assert!(r.robots_skipped > 0);
        assert!(r.allowed_pages < web.num_pages() as u64);
        // Polite crawl never exceeds the allowed set.
        assert!(r.fetched_pages <= r.allowed_pages);
        // But covers most of what is allowed.
        assert!(r.coverage_allowed > 0.6, "allowed coverage {}", r.coverage_allowed);
    }

    #[test]
    fn sitemaps_discover_pages_links_never_reach() {
        let web = tiny_web();
        let base = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 23).run();
        let mut cfg = fast_cfg();
        cfg.sitemap_fraction = 1.0;
        let coop = DistributedCrawl::new(&web, HashAssigner::new(4), cfg, 23).run();
        assert!(coop.sitemap_discoveries > 0);
        assert!(
            coop.fetched_pages >= base.fetched_pages,
            "coop={} base={}",
            coop.fetched_pages,
            base.fetched_pages
        );
    }

    #[test]
    fn cross_region_penalty_slows_mismatched_agents() {
        let web = tiny_web();
        // All agents in region 0: pages on region-1 hosts pay the penalty.
        let mut slow = fast_cfg();
        slow.agent_regions = vec![0; 4];
        slow.cross_region_penalty = 5 * SECOND;
        let mut free = fast_cfg();
        free.agent_regions = vec![0; 4];
        free.cross_region_penalty = 0;
        let a = DistributedCrawl::new(&web, HashAssigner::new(4), slow, 25).run();
        let b = DistributedCrawl::new(&web, HashAssigner::new(4), free, 25).run();
        assert!(a.makespan > b.makespan, "penalized {} vs {}", a.makespan, b.makespan);
    }

    #[test]
    fn exchange_traffic_scales_with_remote_links() {
        // With one agent there is no exchange traffic at all.
        let web = tiny_web();
        let mut cfg = fast_cfg();
        cfg.agents = 1;
        let solo = DistributedCrawl::new(&web, HashAssigner::new(1), cfg, 15).run();
        assert_eq!(solo.exchange.sent_urls, 0);
        let multi = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 15).run();
        assert!(multi.exchange.sent_urls > 0);
    }
}
