//! The distributed crawl simulation.
//!
//! Event-driven execution of a full distributed crawl over a
//! [`SyntheticWeb`]: agents with bounded connection pools fetch pages
//! through the QoS model (slow servers, transient failures, retries),
//! resolve hosts through per-agent DNS caches, enforce per-host politeness
//! via [`Frontier`], route discovered URLs with a pluggable
//! [`UrlAssigner`], exchange non-local URLs in batches, and optionally
//! survive an agent crash mid-crawl (the dependability scenario of
//! Section 3).

use crate::assign::{AgentId, UrlAssigner};
use crate::exchange::{ExchangeBuffers, ExchangeStats};
use crate::frontier::Frontier;
use dwr_sim::event::{EventQueue, SimTime};
use dwr_sim::net::Link;
use dwr_sim::{SimRng, SECOND};
use dwr_webgraph::dns::{DnsCache, DnsServer, DnsStats};
use dwr_webgraph::graph::{HostId, PageId};
use dwr_webgraph::qos::{FetchOutcome, QosConfig, QosModel};
use dwr_webgraph::sitemap::{RobotsPolicy, SitemapIndex};
use dwr_webgraph::SyntheticWeb;
use std::collections::{HashMap, HashSet};

/// Crawl parameters.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Number of crawling agents.
    pub agents: u32,
    /// Concurrent connections per agent ("several hundred TCP connections"
    /// in production; smaller here for simulation speed).
    pub connections_per_agent: usize,
    /// Minimum delay between accesses to one host.
    pub politeness_delay: SimTime,
    /// URL-exchange batch size.
    pub batch_size: usize,
    /// Seed every agent with the `k` most-cited URLs (0 disables
    /// suppression).
    pub most_cited_seed: usize,
    /// Link model for inter-agent messages.
    pub link: Link,
    /// Transient-failure retries before a URL is abandoned.
    pub max_retries: u32,
    /// Connection-timeout charged to a failed fetch attempt.
    pub failure_timeout: SimTime,
    /// Periodic exchange flush interval.
    pub flush_interval: SimTime,
    /// Server QoS configuration.
    pub qos: QosConfig,
    /// Crash this agent at this time, redistributing its work.
    pub crash: Option<(AgentId, SimTime)>,
    /// Initial seed pages (page 0 of the first `seeds` hosts).
    pub seeds: usize,
    /// Fraction of hosts with a restrictive robots.txt.
    pub robots_restrictive_fraction: f64,
    /// Fraction of pages such hosts disallow.
    pub robots_disallow_fraction: f64,
    /// Fraction of hosts publishing sitemaps: one fetch from such a host
    /// discovers every page it serves (the sitemaps.org cooperation).
    pub sitemap_fraction: f64,
    /// Extra fetch latency when the agent's region differs from the
    /// host's (the geographic-crawling cost of \[13\]).
    pub cross_region_penalty: SimTime,
    /// Region of each agent (empty = all agents in region 0).
    pub agent_regions: Vec<u16>,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            agents: 4,
            connections_per_agent: 16,
            politeness_delay: 2 * SECOND,
            batch_size: 50,
            most_cited_seed: 0,
            link: Link::wan(),
            max_retries: 3,
            failure_timeout: 5 * SECOND,
            flush_interval: 10 * SECOND,
            qos: QosConfig::default(),
            crash: None,
            seeds: 8,
            robots_restrictive_fraction: 0.0,
            robots_disallow_fraction: 0.0,
            sitemap_fraction: 0.0,
            cross_region_penalty: 0,
            agent_regions: Vec::new(),
        }
    }
}

/// Result of a simulated crawl.
#[derive(Debug, Clone)]
pub struct CrawlReport {
    /// Distinct pages fetched at least once.
    pub fetched_pages: u64,
    /// Fetches of pages already fetched before (crash recovery cost).
    pub duplicate_fetches: u64,
    /// All fetch attempts, including failures.
    pub attempts: u64,
    /// Attempts that hit a transient failure.
    pub transient_failures: u64,
    /// URLs abandoned after exhausting retries.
    pub abandoned: u64,
    /// Fraction of all pages fetched.
    pub coverage: f64,
    /// Simulated completion time.
    pub makespan: SimTime,
    /// Successful fetches per agent.
    pub per_agent_fetches: Vec<u64>,
    /// Aggregated URL-exchange traffic.
    pub exchange: ExchangeStats,
    /// Aggregated DNS cache statistics.
    pub dns: DnsStats,
    /// Total bytes downloaded.
    pub bytes_downloaded: u64,
    /// Discovered URLs skipped because robots.txt disallows them.
    pub robots_skipped: u64,
    /// Pages the robots policies permit fetching.
    pub allowed_pages: u64,
    /// Fraction of *allowed* pages fetched.
    pub coverage_allowed: f64,
    /// Pages first discovered through a sitemap rather than a link.
    pub sitemap_discoveries: u64,
}

#[derive(Debug)]
enum Event {
    /// A free connection slot of `agent` looks for work.
    TryFetch { agent: u32 },
    /// A fetch attempt finished.
    FetchDone { agent: u32, host: HostId, page: PageId, outcome: FetchOutcome },
    /// A URL-exchange batch arrives.
    Deliver { to: u32, urls: Vec<PageId> },
    /// Periodic buffer flush.
    FlushTick,
    /// Agent crash.
    Crash { agent: u32 },
}

struct AgentState {
    frontier: Frontier,
    exchange: ExchangeBuffers,
    dns: DnsCache,
    idle_slots: usize,
    dead: bool,
    fetches: u64,
    /// Pages currently being fetched by this agent. Needed at crash time:
    /// their FetchDone events will be ignored, so the coordinator must
    /// re-allocate them (and the work accounting must not leak).
    in_flight: Vec<(HostId, PageId)>,
}

/// The crawl simulator. Construct, then [`DistributedCrawl::run`].
pub struct DistributedCrawl<'w, A: UrlAssigner> {
    web: &'w SyntheticWeb,
    assigner: A,
    cfg: CrawlConfig,
    rng: SimRng,
}

impl<'w, A: UrlAssigner> DistributedCrawl<'w, A> {
    /// Create a simulator over `web` with the given assignment policy.
    pub fn new(web: &'w SyntheticWeb, assigner: A, cfg: CrawlConfig, seed: u64) -> Self {
        assert!(cfg.agents > 0 && cfg.connections_per_agent > 0);
        DistributedCrawl { web, assigner, cfg, rng: SimRng::new(seed) }
    }

    /// Run the crawl to completion and report.
    ///
    /// Work accounting invariant: a URL is *outstanding* from the moment
    /// it enters a frontier or an exchange buffer until it is fetched,
    /// abandoned, or deduplicated away. The flush timer keeps ticking while
    /// anything is outstanding, so buffered URLs can never be stranded.
    pub fn run(mut self) -> CrawlReport {
        let n = self.cfg.agents as usize;
        let mut qos = QosModel::new(
            self.web.num_hosts(),
            self.cfg.qos,
            self.rng.fork_named("qos").next_u64(),
        );
        let known: HashSet<PageId> =
            self.web.most_cited(self.cfg.most_cited_seed).into_iter().collect();
        let robots = RobotsPolicy::generate(
            self.web,
            self.cfg.robots_restrictive_fraction,
            self.cfg.robots_disallow_fraction,
            self.rng.fork_named("robots").next_u64(),
        );
        let sitemaps = SitemapIndex::generate(
            self.web,
            self.cfg.sitemap_fraction,
            self.rng.fork_named("sitemaps").next_u64(),
        );
        let allowed_pages = robots.allowed_count(self.web) as u64;
        let mut robots_skipped = 0u64;
        let mut sitemap_discoveries = 0u64;
        let mut sitemap_served: HashSet<HostId> = HashSet::new();

        let mut agents: Vec<AgentState> = (0..n)
            .map(|i| AgentState {
                frontier: Frontier::new(self.cfg.politeness_delay),
                exchange: ExchangeBuffers::new(self.cfg.batch_size, known.clone()),
                dns: DnsCache::new(
                    DnsServer::typical(self.rng.fork(i as u64).fork_named("dns")),
                    3_600 * SECOND,
                    10_000,
                ),
                idle_slots: self.cfg.connections_per_agent,
                dead: false,
                fetches: 0,
                in_flight: Vec::new(),
            })
            .collect();

        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut fetched: HashSet<PageId> = HashSet::new();
        let mut retry_count: HashMap<PageId, u32> = HashMap::new();
        let mut duplicates = 0u64;
        let mut attempts = 0u64;
        let mut failures = 0u64;
        let mut abandoned = 0u64;
        let mut bytes = 0u64;
        let mut outstanding: i64 = 0;
        let mut flush_scheduled = true;

        // Seed: the first page of the first `seeds` hosts plus the
        // most-cited set (which every agent knows from a previous crawl).
        let mut seed_pages: Vec<PageId> = (0..self.cfg.seeds.min(self.web.num_hosts()))
            .map(|h| self.web.pages_of_host(HostId(h as u32))[0])
            .collect();
        seed_pages.extend(known.iter().copied());
        seed_pages.sort_unstable();
        seed_pages.dedup();
        for p in seed_pages {
            if !robots.allowed(p, self.web) {
                robots_skipped += 1;
                continue;
            }
            let host = self.web.page(p).host;
            let owner = self.assigner.agent_for(host, self.web);
            if agents[owner.0 as usize].frontier.offer(host, p, 0) {
                outstanding += 1;
            }
        }
        for (i, a) in agents.iter_mut().enumerate() {
            for _ in 0..a.idle_slots {
                queue.schedule_at(0, Event::TryFetch { agent: i as u32 });
            }
            a.idle_slots = 0;
        }
        if let Some((agent, at)) = self.cfg.crash {
            queue.schedule_at(at, Event::Crash { agent: agent.0 });
        }
        queue.schedule_at(self.cfg.flush_interval, Event::FlushTick);

        let mut link_rng = self.rng.fork_named("link");

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Event::TryFetch { agent } => {
                    let a = &mut agents[agent as usize];
                    if a.dead {
                        continue;
                    }
                    match a.frontier.next_fetch(now) {
                        Ok((host, page)) => {
                            a.in_flight.push((host, page));
                            let dns_latency = a.dns.resolve(host, now);
                            attempts += 1;
                            let region_penalty = match self.cfg.agent_regions.get(agent as usize) {
                                Some(&r) if r != self.web.host(host).region => {
                                    self.cfg.cross_region_penalty
                                }
                                _ => 0,
                            };
                            let (outcome, duration) =
                                match qos.fetch(host, u64::from(self.web.page(page).size_bytes)) {
                                    FetchOutcome::Ok(t) => (FetchOutcome::Ok(t), t),
                                    FetchOutcome::TransientFailure => {
                                        (FetchOutcome::TransientFailure, self.cfg.failure_timeout)
                                    }
                                };
                            queue.schedule_at(
                                now + dns_latency + duration + region_penalty,
                                Event::FetchDone { agent, host, page, outcome },
                            );
                        }
                        Err(Some(at)) => queue.schedule_at(at, Event::TryFetch { agent }),
                        Err(None) => a.idle_slots += 1,
                    }
                }
                Event::FetchDone { agent, host, page, outcome } => {
                    if agents[agent as usize].dead {
                        // Agent vanished mid-fetch; the crash handler
                        // already redistributed its queued work, and the
                        // in-flight page was accounted there.
                        continue;
                    }
                    agents[agent as usize].in_flight.retain(|&(h, p)| (h, p) != (host, page));
                    match outcome {
                        FetchOutcome::Ok(_) => {
                            agents[agent as usize].frontier.complete(host, now);
                            agents[agent as usize].fetches += 1;
                            outstanding -= 1;
                            bytes += u64::from(self.web.page(page).size_bytes);
                            if !fetched.insert(page) {
                                duplicates += 1;
                            }
                            // First successful contact with a sitemap host
                            // discovers every allowed page it serves.
                            if sitemaps.has(host) && sitemap_served.insert(host) {
                                let a = &mut agents[agent as usize];
                                for &p in self.web.pages_of_host(host) {
                                    if !robots.allowed(p, self.web) {
                                        continue;
                                    }
                                    if a.frontier.offer(host, p, now) {
                                        outstanding += 1;
                                        sitemap_discoveries += 1;
                                        if a.idle_slots > 0 {
                                            a.idle_slots -= 1;
                                            queue.schedule_at(now, Event::TryFetch { agent });
                                        }
                                    }
                                }
                            }
                            let links: Vec<PageId> = self.web.outlinks(page).to_vec();
                            for target in links {
                                if !robots.allowed(target, self.web) {
                                    robots_skipped += 1;
                                    continue;
                                }
                                let t_host = self.web.page(target).host;
                                let owner = self.assigner.agent_for(t_host, self.web);
                                if owner.0 == agent {
                                    let a = &mut agents[agent as usize];
                                    if a.frontier.offer(t_host, target, now) {
                                        outstanding += 1;
                                        if a.idle_slots > 0 {
                                            a.idle_slots -= 1;
                                            queue.schedule_at(now, Event::TryFetch { agent });
                                        }
                                    }
                                } else {
                                    let a = &mut agents[agent as usize];
                                    let suppressed_before = a.exchange.stats().suppressed;
                                    let maybe_batch = a.exchange.offer(owner, target);
                                    if a.exchange.stats().suppressed == suppressed_before {
                                        // Entered the exchange system.
                                        outstanding += 1;
                                    }
                                    if let Some(batch) = maybe_batch {
                                        let lat = self.cfg.link.transfer_time_jittered(
                                            crate::exchange::BYTES_PER_MESSAGE
                                                + batch.len() as u64
                                                    * crate::exchange::BYTES_PER_URL,
                                            &mut link_rng,
                                        );
                                        queue.schedule_at(
                                            now + lat,
                                            Event::Deliver { to: owner.0, urls: batch },
                                        );
                                    }
                                }
                            }
                            queue.schedule_at(now, Event::TryFetch { agent });
                        }
                        FetchOutcome::TransientFailure => {
                            failures += 1;
                            let count = retry_count.entry(page).or_insert(0);
                            *count += 1;
                            if *count <= self.cfg.max_retries {
                                let backoff = qos.retry_backoff();
                                agents[agent as usize]
                                    .frontier
                                    .retry_later(host, page, now, backoff);
                            } else {
                                agents[agent as usize].frontier.complete(host, now);
                                abandoned += 1;
                                outstanding -= 1;
                            }
                            queue.schedule_at(now, Event::TryFetch { agent });
                        }
                    }
                }
                Event::Deliver { to, urls } => {
                    for url in urls {
                        let host = self.web.page(url).host;
                        // If the addressee died, the current assignment
                        // owns these URLs now.
                        let owner = if agents[to as usize].dead {
                            self.assigner.agent_for(host, self.web)
                        } else {
                            AgentId(to)
                        };
                        let a = &mut agents[owner.0 as usize];
                        if a.frontier.offer(host, url, now) {
                            if a.idle_slots > 0 {
                                a.idle_slots -= 1;
                                queue.schedule_at(now, Event::TryFetch { agent: owner.0 });
                            }
                        } else {
                            // Known URL: the work item evaporates.
                            outstanding -= 1;
                        }
                    }
                }
                Event::FlushTick => {
                    flush_scheduled = false;
                    for agent_state in agents.iter_mut() {
                        if agent_state.dead {
                            continue;
                        }
                        let flushes = agent_state.exchange.flush_all();
                        for (dest, batch) in flushes {
                            let lat = self.cfg.link.transfer_time_jittered(
                                crate::exchange::BYTES_PER_MESSAGE
                                    + batch.len() as u64 * crate::exchange::BYTES_PER_URL,
                                &mut link_rng,
                            );
                            queue
                                .schedule_at(now + lat, Event::Deliver { to: dest.0, urls: batch });
                        }
                    }
                    if outstanding > 0 {
                        queue.schedule_at(now + self.cfg.flush_interval, Event::FlushTick);
                        flush_scheduled = true;
                    }
                }
                Event::Crash { agent } => {
                    let orphans: Vec<PageId> = {
                        let a = &mut agents[agent as usize];
                        if a.dead {
                            continue;
                        }
                        a.dead = true;
                        a.idle_slots = 0;
                        let mut urls: Vec<PageId> =
                            a.frontier.drain().into_iter().map(|(_, p)| p).collect();
                        // In-flight fetches are lost with the agent; their
                        // FetchDone events will be ignored, so re-allocate
                        // the pages here (keeps `outstanding` accurate).
                        urls.extend(a.in_flight.drain(..).map(|(_, p)| p));
                        // Undelivered outgoing buffers are re-allocated by
                        // the coordinator as well.
                        let dests: Vec<AgentId> =
                            (0..n as u32).map(AgentId).filter(|d| d.0 != agent).collect();
                        for dest in dests {
                            urls.extend(a.exchange.recall(dest));
                        }
                        urls
                    };
                    self.assigner.remove_agent(AgentId(agent));
                    for url in orphans {
                        let host = self.web.page(url).host;
                        let owner = self.assigner.agent_for(host, self.web);
                        let o = &mut agents[owner.0 as usize];
                        if o.frontier.offer(host, url, now) {
                            if o.idle_slots > 0 {
                                o.idle_slots -= 1;
                                queue.schedule_at(now, Event::TryFetch { agent: owner.0 });
                            }
                        } else {
                            outstanding -= 1;
                        }
                    }
                }
            }
            // Safety net: re-arm the flush timer when buffered work exists
            // but no tick is pending (e.g. everything became buffered right
            // after the last tick fired and decided not to re-arm).
            if !flush_scheduled && outstanding > 0 && queue.is_empty() {
                queue.schedule_at(now + self.cfg.flush_interval, Event::FlushTick);
                flush_scheduled = true;
            }
        }

        let makespan = queue.now();
        let exchange = agents.iter().fold(ExchangeStats::default(), |acc, a| {
            let s = a.exchange.stats();
            ExchangeStats {
                offered: acc.offered + s.offered,
                suppressed: acc.suppressed + s.suppressed,
                sent_urls: acc.sent_urls + s.sent_urls,
                messages: acc.messages + s.messages,
                bytes: acc.bytes + s.bytes,
            }
        });
        let dns = agents.iter().fold(DnsStats::default(), |acc, a| {
            let s = a.dns.stats();
            DnsStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                total_lookup_time: acc.total_lookup_time + s.total_lookup_time,
            }
        });
        CrawlReport {
            fetched_pages: fetched.len() as u64,
            duplicate_fetches: duplicates,
            attempts,
            transient_failures: failures,
            abandoned,
            coverage: fetched.len() as f64 / self.web.num_pages() as f64,
            makespan,
            per_agent_fetches: agents.iter().map(|a| a.fetches).collect(),
            exchange,
            dns,
            bytes_downloaded: bytes,
            robots_skipped,
            allowed_pages,
            coverage_allowed: fetched.len() as f64 / allowed_pages.max(1) as f64,
            sitemap_discoveries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{ConsistentHashAssigner, HashAssigner};
    use dwr_webgraph::generate::{generate_web, WebConfig};

    fn tiny_web() -> SyntheticWeb {
        let mut cfg = WebConfig::tiny();
        cfg.num_pages = 800;
        cfg.num_hosts = 40;
        generate_web(&cfg, 77)
    }

    fn fast_cfg() -> CrawlConfig {
        CrawlConfig {
            agents: 4,
            connections_per_agent: 8,
            politeness_delay: SECOND / 2,
            batch_size: 20,
            most_cited_seed: 0,
            qos: QosConfig { flaky_fraction: 0.0, slow_fraction: 0.0, ..QosConfig::default() },
            ..CrawlConfig::default()
        }
    }

    #[test]
    fn crawl_reaches_high_coverage() {
        let web = tiny_web();
        let crawl = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 1);
        let r = crawl.run();
        // The giant component of a PA graph is most of it; seeds cover the
        // rest only partially (isolated hosts stay uncrawled).
        assert!(r.coverage > 0.6, "coverage={}", r.coverage);
        assert_eq!(r.duplicate_fetches, 0);
        assert!(r.makespan > 0);
        assert_eq!(r.per_agent_fetches.iter().sum::<u64>(), r.fetched_pages);
    }

    #[test]
    fn deterministic_given_seed() {
        let web = tiny_web();
        let a = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 5).run();
        let b = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 5).run();
        assert_eq!(a.fetched_pages, b.fetched_pages);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.exchange, b.exchange);
    }

    #[test]
    fn most_cited_seeding_cuts_exchange_traffic() {
        let web = tiny_web();
        let base = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 7).run();
        let mut cfg = fast_cfg();
        cfg.most_cited_seed = 50;
        let seeded = DistributedCrawl::new(&web, HashAssigner::new(4), cfg, 7).run();
        assert!(
            seeded.exchange.sent_urls < base.exchange.sent_urls,
            "seeded={} base={}",
            seeded.exchange.sent_urls,
            base.exchange.sent_urls
        );
        assert!(seeded.exchange.suppressed > 0);
        // Coverage must not suffer.
        assert!(seeded.coverage >= base.coverage - 0.05);
    }

    #[test]
    fn transient_failures_are_retried() {
        let web = tiny_web();
        let mut cfg = fast_cfg();
        cfg.qos.flaky_fraction = 0.3;
        cfg.qos.flaky_failure_prob = 0.4;
        let r = DistributedCrawl::new(&web, HashAssigner::new(4), cfg, 9).run();
        assert!(r.transient_failures > 0);
        // Retries keep coverage up despite failures.
        assert!(r.coverage > 0.5, "coverage={}", r.coverage);
        assert!(r.attempts > r.fetched_pages);
    }

    #[test]
    fn crash_recovery_preserves_coverage() {
        let web = tiny_web();
        let baseline =
            DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), fast_cfg(), 11).run();
        let mut cfg = fast_cfg();
        cfg.crash = Some((AgentId(2), baseline.makespan / 4));
        let crashed =
            DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), cfg, 11).run();
        assert!(
            crashed.coverage > baseline.coverage - 0.1,
            "crashed={} baseline={}",
            crashed.coverage,
            baseline.coverage
        );
        // The dead agent stops fetching.
        assert!(crashed.per_agent_fetches[2] < baseline.per_agent_fetches[2]);
    }

    #[test]
    fn dns_cache_hits_dominate() {
        let web = tiny_web();
        let r = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 13).run();
        // Many pages per host ⇒ most lookups are repeat lookups.
        assert!(r.dns.hit_ratio() > 0.7, "dns hit ratio {}", r.dns.hit_ratio());
    }

    #[test]
    fn robots_exclusion_is_respected() {
        let web = tiny_web();
        let mut cfg = fast_cfg();
        cfg.robots_restrictive_fraction = 1.0;
        cfg.robots_disallow_fraction = 0.4;
        let r = DistributedCrawl::new(&web, HashAssigner::new(4), cfg, 21).run();
        assert!(r.robots_skipped > 0);
        assert!(r.allowed_pages < web.num_pages() as u64);
        // Polite crawl never exceeds the allowed set.
        assert!(r.fetched_pages <= r.allowed_pages);
        // But covers most of what is allowed.
        assert!(r.coverage_allowed > 0.6, "allowed coverage {}", r.coverage_allowed);
    }

    #[test]
    fn sitemaps_discover_pages_links_never_reach() {
        let web = tiny_web();
        let base = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 23).run();
        let mut cfg = fast_cfg();
        cfg.sitemap_fraction = 1.0;
        let coop = DistributedCrawl::new(&web, HashAssigner::new(4), cfg, 23).run();
        assert!(coop.sitemap_discoveries > 0);
        assert!(
            coop.fetched_pages >= base.fetched_pages,
            "coop={} base={}",
            coop.fetched_pages,
            base.fetched_pages
        );
    }

    #[test]
    fn cross_region_penalty_slows_mismatched_agents() {
        let web = tiny_web();
        // All agents in region 0: pages on region-1 hosts pay the penalty.
        let mut slow = fast_cfg();
        slow.agent_regions = vec![0; 4];
        slow.cross_region_penalty = 5 * SECOND;
        let mut free = fast_cfg();
        free.agent_regions = vec![0; 4];
        free.cross_region_penalty = 0;
        let a = DistributedCrawl::new(&web, HashAssigner::new(4), slow, 25).run();
        let b = DistributedCrawl::new(&web, HashAssigner::new(4), free, 25).run();
        assert!(a.makespan > b.makespan, "penalized {} vs {}", a.makespan, b.makespan);
    }

    #[test]
    fn exchange_traffic_scales_with_remote_links() {
        // With one agent there is no exchange traffic at all.
        let web = tiny_web();
        let mut cfg = fast_cfg();
        cfg.agents = 1;
        let solo = DistributedCrawl::new(&web, HashAssigner::new(1), cfg, 15).run();
        assert_eq!(solo.exchange.sent_urls, 0);
        let multi = DistributedCrawl::new(&web, HashAssigner::new(4), fast_cfg(), 15).run();
        assert!(multi.exchange.sent_urls > 0);
    }
}
