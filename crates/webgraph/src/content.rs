//! Topic-conditioned Zipfian content model.
//!
//! Documents are bags of terms drawn from a mixture of a **background
//! Zipfian vocabulary** (function words, shared vocabulary) and a
//! **topic-specific Zipfian vocabulary** (each topic owns a disjoint slice
//! of the term space). This gives exactly the properties distributed
//! indexing experiments need:
//!
//! * global term frequencies are Zipfian, so posting lists are heavy-tailed
//!   (the bin-packing experiments of Section 4 are meaningless without
//!   this);
//! * documents of the same topic share vocabulary, so topical clustering
//!   and query-driven co-clustering have signal to find;
//! * queries generated from the same model hit topical partitions
//!   selectively, which is what collection selection exploits.

use crate::graph::{SyntheticWeb, TopicId};
use dwr_sim::dist::Zipf;
use dwr_sim::SimRng;

/// Identifier of a term (dense, `0..vocabulary_size`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Parameters and samplers of the content model.
#[derive(Debug, Clone)]
pub struct ContentModel {
    background_vocab: u32,
    terms_per_topic: u32,
    num_topics: u16,
    background_zipf: Zipf,
    topic_zipf: Zipf,
    /// Probability a token is topical rather than background.
    topical_fraction: f64,
    /// Mean document length in tokens.
    mean_doc_len: f64,
}

impl ContentModel {
    /// Build a content model.
    ///
    /// The term space is laid out as `[0, background_vocab)` for shared
    /// terms followed by `terms_per_topic` terms for each topic.
    pub fn new(
        background_vocab: u32,
        terms_per_topic: u32,
        num_topics: u16,
        topical_fraction: f64,
        mean_doc_len: f64,
    ) -> Self {
        assert!(background_vocab > 0 && terms_per_topic > 0 && num_topics > 0);
        assert!((0.0..=1.0).contains(&topical_fraction));
        assert!(mean_doc_len >= 1.0);
        ContentModel {
            background_vocab,
            terms_per_topic,
            num_topics,
            background_zipf: Zipf::new(u64::from(background_vocab), 1.0),
            topic_zipf: Zipf::new(u64::from(terms_per_topic), 1.0),
            topical_fraction,
            mean_doc_len,
        }
    }

    /// A small default suitable for the experiments in this repository.
    pub fn small(num_topics: u16) -> Self {
        ContentModel::new(20_000, 2_000, num_topics, 0.35, 150.0)
    }

    /// Total vocabulary size (background + all topics).
    pub fn vocabulary_size(&self) -> u32 {
        self.background_vocab + u32::from(self.num_topics) * self.terms_per_topic
    }

    /// Number of topics.
    pub fn num_topics(&self) -> u16 {
        self.num_topics
    }

    /// First term id of `topic`'s dedicated slice.
    pub fn topic_base(&self, topic: TopicId) -> TermId {
        assert!(topic.0 < self.num_topics);
        TermId(self.background_vocab + u32::from(topic.0) * self.terms_per_topic)
    }

    /// The topic owning `term`, or `None` for background terms.
    pub fn topic_of_term(&self, term: TermId) -> Option<TopicId> {
        if term.0 < self.background_vocab {
            None
        } else {
            let t = (term.0 - self.background_vocab) / self.terms_per_topic;
            (t < u32::from(self.num_topics)).then_some(TopicId(t as u16))
        }
    }

    /// Draw one token for a document of topic `topic`.
    pub fn sample_token(&self, topic: TopicId, rng: &mut SimRng) -> TermId {
        if rng.chance(self.topical_fraction) {
            let rank = self.topic_zipf.sample(rng) - 1;
            TermId(self.topic_base(topic).0 + rank as u32)
        } else {
            TermId(self.background_zipf.sample(rng) as u32 - 1)
        }
    }

    /// Generate the term-frequency vector of one document: a sorted
    /// `(term, tf)` list. Document length is exponential-ish around the
    /// configured mean, with a floor of 10 tokens.
    pub fn sample_document(&self, topic: TopicId, rng: &mut SimRng) -> Vec<(TermId, u32)> {
        let len = (self.mean_doc_len * (-rng.f64_open().ln())).max(10.0) as usize;
        let mut tokens: Vec<u32> = Vec::with_capacity(len);
        for _ in 0..len {
            tokens.push(self.sample_token(topic, rng).0);
        }
        tokens.sort_unstable();
        let mut out: Vec<(TermId, u32)> = Vec::with_capacity(len / 2);
        for t in tokens {
            match out.last_mut() {
                Some((term, tf)) if term.0 == t => *tf += 1,
                _ => out.push((TermId(t), 1)),
            }
        }
        out
    }

    /// Generate term vectors for every page of `web`, in page-id order.
    ///
    /// Deterministic given `(web, seed)`: each page's stream is forked from
    /// its id, so regenerating a single page gives the same content.
    pub fn corpus(&self, web: &SyntheticWeb, seed: u64) -> Vec<Vec<(TermId, u32)>> {
        let root = SimRng::new(seed).fork_named("content");
        web.page_ids()
            .map(|p| {
                let mut rng = root.fork(u64::from(p.0));
                self.sample_document(web.page(p).topic, &mut rng)
            })
            .collect()
    }

    /// Sample a *query* of `len` terms about `topic`: queries favour the
    /// head of the topical vocabulary even more strongly than documents do
    /// (searchers use discriminative terms).
    pub fn sample_query_terms(&self, topic: TopicId, len: usize, rng: &mut SimRng) -> Vec<TermId> {
        let mut terms = Vec::with_capacity(len);
        for _ in 0..len {
            // Queries are predominantly topical with occasional background
            // (stop-word-like) terms.
            if rng.chance(0.85) {
                let rank = self.topic_zipf.sample(rng) - 1;
                terms.push(TermId(self.topic_base(topic).0 + rank as u32));
            } else {
                terms.push(TermId(self.background_zipf.sample(rng) as u32 - 1));
            }
        }
        terms.sort_unstable();
        terms.dedup();
        terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_web, WebConfig};

    fn model() -> ContentModel {
        ContentModel::small(8)
    }

    #[test]
    fn term_space_layout() {
        let m = model();
        assert_eq!(m.vocabulary_size(), 20_000 + 8 * 2_000);
        assert_eq!(m.topic_base(TopicId(0)), TermId(20_000));
        assert_eq!(m.topic_base(TopicId(7)), TermId(20_000 + 7 * 2_000));
        assert_eq!(m.topic_of_term(TermId(100)), None);
        assert_eq!(m.topic_of_term(TermId(20_000)), Some(TopicId(0)));
        assert_eq!(m.topic_of_term(TermId(20_000 + 2_000)), Some(TopicId(1)));
    }

    #[test]
    fn document_tf_vector_sorted_unique() {
        let m = model();
        let mut rng = SimRng::new(1);
        let doc = m.sample_document(TopicId(3), &mut rng);
        assert!(!doc.is_empty());
        assert!(doc.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(doc.iter().all(|&(_, tf)| tf >= 1));
    }

    #[test]
    fn documents_contain_topical_terms() {
        let m = model();
        let mut rng = SimRng::new(2);
        let doc = m.sample_document(TopicId(5), &mut rng);
        let topical = doc.iter().filter(|(t, _)| m.topic_of_term(*t) == Some(TopicId(5))).count();
        let wrong_topic = doc
            .iter()
            .filter(|(t, _)| m.topic_of_term(*t).is_some_and(|tt| tt != TopicId(5)))
            .count();
        assert!(topical > 0);
        assert_eq!(wrong_topic, 0, "documents never leak other topics' terms");
    }

    #[test]
    fn corpus_is_deterministic_and_page_stable() {
        let web = generate_web(&WebConfig::tiny(), 9);
        let m = model();
        let a = m.corpus(&web, 100);
        let b = m.corpus(&web, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), web.num_pages());
    }

    #[test]
    fn global_term_frequencies_are_skewed() {
        let web = generate_web(&WebConfig::tiny(), 10);
        let m = model();
        let corpus = m.corpus(&web, 11);
        let mut freq = std::collections::HashMap::new();
        for doc in &corpus {
            for &(t, tf) in doc {
                *freq.entry(t).or_insert(0u64) += u64::from(tf);
            }
        }
        let mut counts: Vec<u64> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top10: u64 = counts.iter().take(10).sum();
        assert!(top10 as f64 / total as f64 > 0.08, "top-10 share {}", top10 as f64 / total as f64);
    }

    #[test]
    fn queries_are_mostly_topical_and_deduped() {
        let m = model();
        let mut rng = SimRng::new(3);
        let q = m.sample_query_terms(TopicId(2), 3, &mut rng);
        assert!(!q.is_empty() && q.len() <= 3);
        let mut sorted = q.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), q.len());
    }

    #[test]
    #[should_panic]
    fn topic_base_rejects_out_of_range() {
        model().topic_base(TopicId(8));
    }
}
