//! The Web as a host-partitioned directed graph.
//!
//! Pages live on hosts; links are directed page→page edges. The structure
//! is immutable once generated (evolution produces change *events*, not
//! in-place mutation) so crawler agents can share it freely.

/// Identifier of a page (dense, `0..num_pages`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// Identifier of a host / Web server (dense, `0..num_hosts`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Identifier of a topic (dense, `0..num_topics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicId(pub u16);

/// Static metadata of one page.
#[derive(Debug, Clone, Copy)]
pub struct PageMeta {
    /// Host the page lives on.
    pub host: HostId,
    /// Dominant topic of the page.
    pub topic: TopicId,
    /// Body size in bytes (drawn from a bounded Pareto at generation time).
    pub size_bytes: u32,
    /// Expected content changes per simulated day (heavy-tailed across
    /// pages: most pages are static, a few change constantly).
    pub change_rate_per_day: f32,
}

/// Static metadata of one host.
#[derive(Debug, Clone)]
pub struct HostMeta {
    /// Hostname, e.g. `"host000123.example"`. Used by hashing assigners.
    pub name: String,
    /// Geographic region index (0-based); used for geo-aware crawling and
    /// multi-site query routing.
    pub region: u16,
    /// Dominant topic of the host (pages mostly inherit it).
    pub topic: TopicId,
}

/// An immutable synthetic Web: pages, hosts, and the link graph in CSR form.
#[derive(Debug, Clone)]
pub struct SyntheticWeb {
    pub(crate) pages: Vec<PageMeta>,
    pub(crate) hosts: Vec<HostMeta>,
    /// CSR offsets into `link_targets`: page `p`'s out-links are
    /// `link_targets[link_offsets[p] .. link_offsets[p+1]]`.
    pub(crate) link_offsets: Vec<u32>,
    pub(crate) link_targets: Vec<PageId>,
    /// Pages per host (CSR as well): host `h`'s pages are
    /// `host_pages[host_offsets[h] .. host_offsets[h+1]]`.
    pub(crate) host_offsets: Vec<u32>,
    pub(crate) host_pages: Vec<PageId>,
    /// Number of topics the generator used.
    pub(crate) num_topics: u16,
}

impl SyntheticWeb {
    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of topics in the generator's topic model.
    pub fn num_topics(&self) -> u16 {
        self.num_topics
    }

    /// Total number of links.
    pub fn num_links(&self) -> usize {
        self.link_targets.len()
    }

    /// Metadata of a page.
    pub fn page(&self, p: PageId) -> &PageMeta {
        &self.pages[p.0 as usize]
    }

    /// Metadata of a host.
    pub fn host(&self, h: HostId) -> &HostMeta {
        &self.hosts[h.0 as usize]
    }

    /// Out-links of a page.
    pub fn outlinks(&self, p: PageId) -> &[PageId] {
        let i = p.0 as usize;
        let (lo, hi) = (self.link_offsets[i] as usize, self.link_offsets[i + 1] as usize);
        &self.link_targets[lo..hi]
    }

    /// Pages hosted on `h`.
    pub fn pages_of_host(&self, h: HostId) -> &[PageId] {
        let i = h.0 as usize;
        let (lo, hi) = (self.host_offsets[i] as usize, self.host_offsets[i + 1] as usize);
        &self.host_pages[lo..hi]
    }

    /// Iterate over all page ids.
    pub fn page_ids(&self) -> impl Iterator<Item = PageId> + '_ {
        (0..self.pages.len() as u32).map(PageId)
    }

    /// Iterate over all host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }

    /// Compute the in-degree of every page. O(links).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.pages.len()];
        for &t in &self.link_targets {
            deg[t.0 as usize] += 1;
        }
        deg
    }

    /// Fraction of links whose source and target are on the same host.
    ///
    /// This is the "link locality" the paper's Section 3 exploits; the
    /// generator's `locality` parameter controls it directly.
    pub fn link_locality(&self) -> f64 {
        if self.link_targets.is_empty() {
            return 0.0;
        }
        let mut local = 0usize;
        for p in self.page_ids() {
            let src_host = self.page(p).host;
            for &t in self.outlinks(p) {
                if self.page(t).host == src_host {
                    local += 1;
                }
            }
        }
        local as f64 / self.link_targets.len() as f64
    }

    /// The `k` pages with highest in-degree, most-cited first.
    ///
    /// Crawling agents seed their "known URLs" set with these, which (given
    /// the power-law in-degree) suppresses most URL-exchange traffic.
    pub fn most_cited(&self, k: usize) -> Vec<PageId> {
        let deg = self.in_degrees();
        let mut ids: Vec<u32> = (0..self.pages.len() as u32).collect();
        ids.sort_unstable_by_key(|&i| (std::cmp::Reverse(deg[i as usize]), i));
        ids.truncate(k);
        ids.into_iter().map(PageId).collect()
    }

    /// Fit a power-law exponent to the in-degree tail via the discrete MLE
    /// (Clauset et al.) over pages with in-degree >= `xmin`.
    ///
    /// Returns `None` if fewer than 10 pages qualify.
    pub fn in_degree_power_law_exponent(&self, xmin: u32) -> Option<f64> {
        assert!(xmin >= 1);
        let deg = self.in_degrees();
        let tail: Vec<u32> = deg.into_iter().filter(|&d| d >= xmin).collect();
        if tail.len() < 10 {
            return None;
        }
        let n = tail.len() as f64;
        let sum_ln: f64 = tail.iter().map(|&d| (d as f64 / (xmin as f64 - 0.5)).ln()).sum();
        Some(1.0 + n / sum_ln)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_web, WebConfig};

    fn small_web() -> SyntheticWeb {
        generate_web(&WebConfig::tiny(), 42)
    }

    #[test]
    fn csr_invariants_hold() {
        let web = small_web();
        assert_eq!(web.link_offsets.len(), web.num_pages() + 1);
        assert_eq!(web.host_offsets.len(), web.num_hosts() + 1);
        assert_eq!(*web.link_offsets.last().unwrap() as usize, web.num_links());
        assert_eq!(*web.host_offsets.last().unwrap() as usize, web.num_pages());
        // offsets monotone
        assert!(web.link_offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(web.host_offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn every_page_belongs_to_its_host_list() {
        let web = small_web();
        for h in web.host_ids() {
            for &p in web.pages_of_host(h) {
                assert_eq!(web.page(p).host, h);
            }
        }
        // and the host lists partition the page set
        let total: usize = web.host_ids().map(|h| web.pages_of_host(h).len()).sum();
        assert_eq!(total, web.num_pages());
    }

    #[test]
    fn in_degrees_sum_to_links() {
        let web = small_web();
        let sum: u64 = web.in_degrees().iter().map(|&d| u64::from(d)).sum();
        assert_eq!(sum as usize, web.num_links());
    }

    #[test]
    fn most_cited_sorted_descending() {
        let web = small_web();
        let deg = web.in_degrees();
        let top = web.most_cited(10);
        for w in top.windows(2) {
            assert!(deg[w[0].0 as usize] >= deg[w[1].0 as usize]);
        }
    }

    #[test]
    fn link_locality_in_unit_interval() {
        let web = small_web();
        let l = web.link_locality();
        assert!((0.0..=1.0).contains(&l));
    }
}
