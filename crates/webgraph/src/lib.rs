//! # dwr-webgraph — a synthetic, evolving Web
//!
//! The paper's crawling and indexing results depend on distributional
//! properties of the Web rather than on any particular crawl:
//!
//! * the **in-degree of pages follows a power law** (Section 3 uses this to
//!   justify suppressing the most-cited URLs from inter-agent exchanges);
//! * **most links are host-local** ("the fact that most of the links on the
//!   Web point to other pages in the same server makes it unnecessary to
//!   transfer those URLs to a different agent");
//! * **host sizes are heavily skewed**, which is why plain hashing of host
//!   names balances hosts but not documents;
//! * pages have **topics**, and hosts are topically coherent, which is what
//!   makes topical document partitioning meaningful (Section 4);
//! * content changes and the Web grows, which drives re-crawling.
//!
//! This crate builds a web with exactly those properties, from scratch, with
//! measurable parameters: a preferential-attachment link generator with a
//! host-locality dial, a Zipfian topic-conditioned content model, DNS and
//! server-QoS models, and a change/growth process.

pub mod content;
pub mod dns;
pub mod evolve;
pub mod generate;
pub mod graph;
pub mod qos;
pub mod sitemap;

pub use content::{ContentModel, TermId};
pub use generate::{generate_web, WebConfig};
pub use graph::{HostId, PageId, SyntheticWeb, TopicId};
