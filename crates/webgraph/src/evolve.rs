//! Web evolution: content change and growth processes.
//!
//! "Web data, however, is always evolving" (Section 1) — re-crawling policy
//! (Section 3) and index freshness (Section 4) only make sense against a
//! change process. Each page changes according to a Poisson process with
//! its own rate (heavy-tailed across pages, per the crawl literature), and
//! new pages are born at a configurable rate.

use crate::graph::{PageId, SyntheticWeb};
use dwr_sim::dist::Exponential;
use dwr_sim::{SimRng, SimTime, DAY};

/// A change event: `page` changed at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeEvent {
    /// When the change happened.
    pub time: SimTime,
    /// Which page changed.
    pub page: PageId,
}

/// Generates the change timeline of a web over a horizon.
///
/// Each page owns an independent forked RNG stream, so the timeline of a
/// page is invariant to how the horizon is split into query windows.
#[derive(Debug)]
pub struct ChangeProcess {
    /// Per-page next change time (µs), lazily advanced.
    next_change: Vec<SimTime>,
    rates_per_us: Vec<f64>,
    rngs: Vec<SimRng>,
}

impl ChangeProcess {
    /// Build the process from each page's `change_rate_per_day`.
    pub fn new(web: &SyntheticWeb, seed: u64) -> Self {
        let root = SimRng::new(seed).fork_named("change");
        let rates_per_us: Vec<f64> = web
            .page_ids()
            .map(|p| f64::from(web.page(p).change_rate_per_day) / DAY as f64)
            .collect();
        let mut rngs: Vec<SimRng> = web.page_ids().map(|p| root.fork(u64::from(p.0))).collect();
        let next_change =
            rates_per_us
                .iter()
                .zip(rngs.iter_mut())
                .map(|(&r, rng)| {
                    if r > 0.0 {
                        Exponential::new(r).sample(rng) as SimTime
                    } else {
                        SimTime::MAX
                    }
                })
                .collect();
        ChangeProcess { next_change, rates_per_us, rngs }
    }

    /// All change events in `[from, to)`, in time order.
    ///
    /// Advances internal state; successive calls with contiguous windows
    /// produce a consistent, gap-free timeline.
    pub fn events_in(&mut self, from: SimTime, to: SimTime) -> Vec<ChangeEvent> {
        assert!(from <= to);
        let mut events = Vec::new();
        for (i, next) in self.next_change.iter_mut().enumerate() {
            let rate = self.rates_per_us[i];
            if rate <= 0.0 {
                continue;
            }
            let exp = Exponential::new(rate);
            while *next < to {
                if *next >= from {
                    events.push(ChangeEvent { time: *next, page: PageId(i as u32) });
                }
                *next += exp.sample(&mut self.rngs[i]).max(1.0) as SimTime;
            }
        }
        events.sort_unstable_by_key(|e| (e.time, e.page));
        events
    }

    /// Whether `page` changed in `[since, now)` — convenience for
    /// If-Modified-Since simulation without materializing events.
    pub fn expected_changes(&self, page: PageId, window: SimTime) -> f64 {
        self.rates_per_us[page.0 as usize] * window as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_web, WebConfig};

    #[test]
    fn events_ordered_and_in_window() {
        let web = generate_web(&WebConfig::tiny(), 21);
        let mut proc = ChangeProcess::new(&web, 22);
        let events = proc.events_in(0, 7 * DAY);
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(events.iter().all(|e| e.time < 7 * DAY));
    }

    #[test]
    fn dynamic_pages_change_more() {
        let web = generate_web(&WebConfig::tiny(), 23);
        let mut proc = ChangeProcess::new(&web, 24);
        let events = proc.events_in(0, 30 * DAY);
        let mut per_page = std::collections::HashMap::new();
        for e in &events {
            *per_page.entry(e.page).or_insert(0u32) += 1;
        }
        // Expected count for a dynamic page over 30 days at 4/day = 120.
        let max = per_page.values().copied().max().unwrap_or(0);
        assert!(max > 60, "max changes per page = {max}");
    }

    #[test]
    fn contiguous_windows_are_gap_free() {
        let web = generate_web(&WebConfig::tiny(), 25);
        let mut a = ChangeProcess::new(&web, 26);
        let mut b = ChangeProcess::new(&web, 26);
        let whole = a.events_in(0, 10 * DAY);
        let mut parts = b.events_in(0, 5 * DAY);
        parts.extend(b.events_in(5 * DAY, 10 * DAY));
        assert_eq!(whole, parts);
    }

    #[test]
    fn expected_changes_scales_with_window() {
        let web = generate_web(&WebConfig::tiny(), 27);
        let proc = ChangeProcess::new(&web, 28);
        let p = PageId(0);
        let one = proc.expected_changes(p, DAY);
        let ten = proc.expected_changes(p, 10 * DAY);
        assert!((ten - 10.0 * one).abs() < 1e-9);
    }
}
