//! Web generator: skewed hosts, preferential-attachment links with a
//! host-locality dial, topical coherence, heavy-tailed sizes and change
//! rates.

use crate::graph::{HostId, HostMeta, PageId, PageMeta, SyntheticWeb, TopicId};
use dwr_sim::dist::{BoundedPareto, Zipf};
use dwr_sim::SimRng;

/// Parameters of the synthetic Web.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Total number of pages.
    pub num_pages: usize,
    /// Number of hosts; host sizes follow a Zipf over hosts.
    pub num_hosts: usize,
    /// Zipf exponent of host sizes (≈1 reproduces observed host-size skew).
    pub host_size_exponent: f64,
    /// Number of topics.
    pub num_topics: u16,
    /// Number of geographic regions hosts are spread over.
    pub num_regions: u16,
    /// Probability a page's topic equals its host's topic.
    pub host_topic_coherence: f64,
    /// Mean out-degree of a page.
    pub mean_out_degree: f64,
    /// Probability an out-link stays on the same host (link locality β).
    /// Measured values on real crawls are around 0.6–0.9.
    pub locality: f64,
    /// Preferential-attachment strength for remote links: with this
    /// probability a remote target is chosen proportionally to in-degree,
    /// otherwise uniformly. Values near 1 give a clean power law.
    pub preferential: f64,
    /// Page size distribution (bytes).
    pub min_page_bytes: f64,
    pub max_page_bytes: f64,
    pub page_size_exponent: f64,
    /// Fraction of "dynamic" pages with a high change rate.
    pub dynamic_fraction: f64,
    /// Daily change rate of dynamic pages (others change ~100× slower).
    pub dynamic_change_rate: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            num_pages: 100_000,
            num_hosts: 2_000,
            host_size_exponent: 1.0,
            num_topics: 16,
            num_regions: 3,
            host_topic_coherence: 0.8,
            mean_out_degree: 10.0,
            locality: 0.75,
            preferential: 0.9,
            min_page_bytes: 2_000.0,
            max_page_bytes: 500_000.0,
            page_size_exponent: 1.3,
            dynamic_fraction: 0.1,
            dynamic_change_rate: 4.0,
        }
    }
}

impl WebConfig {
    /// A small configuration for unit tests (fast to generate).
    pub fn tiny() -> Self {
        WebConfig {
            num_pages: 2_000,
            num_hosts: 100,
            num_topics: 8,
            num_regions: 2,
            ..WebConfig::default()
        }
    }

    /// A medium configuration for the figure-regeneration experiments.
    pub fn medium() -> Self {
        WebConfig { num_pages: 20_000, num_hosts: 500, ..WebConfig::default() }
    }
}

/// Generate a synthetic Web. Fully deterministic given `(config, seed)`.
pub fn generate_web(cfg: &WebConfig, seed: u64) -> SyntheticWeb {
    assert!(cfg.num_pages > 0 && cfg.num_hosts > 0 && cfg.num_topics > 0);
    assert!(cfg.num_pages >= cfg.num_hosts, "need at least one page per host");
    let root = SimRng::new(seed);
    let mut rng_host = root.fork_named("hosts");
    let mut rng_link = root.fork_named("links");
    let mut rng_meta = root.fork_named("meta");

    // --- Hosts: sizes via Zipf ranks, then at least one page per host. ---
    let host_zipf = Zipf::new(cfg.num_hosts as u64, cfg.host_size_exponent);
    let mut host_of_page: Vec<HostId> = Vec::with_capacity(cfg.num_pages);
    // One guaranteed page per host so no host is empty.
    for h in 0..cfg.num_hosts {
        host_of_page.push(HostId(h as u32));
    }
    for _ in cfg.num_hosts..cfg.num_pages {
        let rank = host_zipf.sample(&mut rng_host) - 1;
        host_of_page.push(HostId(rank as u32));
    }
    // Shuffle so page ids do not encode host rank (crawl order realism).
    rng_host.shuffle(&mut host_of_page[cfg.num_hosts..]);

    let hosts: Vec<HostMeta> = (0..cfg.num_hosts)
        .map(|h| HostMeta {
            name: format!("host{h:06}.example"),
            region: (rng_meta.below(cfg.num_regions as u64)) as u16,
            topic: TopicId(rng_meta.below(cfg.num_topics as u64) as u16),
        })
        .collect();

    // --- Page metadata: topic, size, change rate. ---
    let size_dist =
        BoundedPareto::new(cfg.min_page_bytes, cfg.max_page_bytes, cfg.page_size_exponent);
    let pages: Vec<PageMeta> = host_of_page
        .iter()
        .map(|&h| {
            let topic = if rng_meta.chance(cfg.host_topic_coherence) {
                hosts[h.0 as usize].topic
            } else {
                TopicId(rng_meta.below(cfg.num_topics as u64) as u16)
            };
            let change = if rng_meta.chance(cfg.dynamic_fraction) {
                cfg.dynamic_change_rate
            } else {
                cfg.dynamic_change_rate / 100.0
            };
            PageMeta {
                host: h,
                topic,
                size_bytes: size_dist.sample(&mut rng_meta) as u32,
                change_rate_per_day: change as f32,
            }
        })
        .collect();

    // --- Host→pages CSR. ---
    let mut host_counts = vec![0u32; cfg.num_hosts];
    for p in &pages {
        host_counts[p.host.0 as usize] += 1;
    }
    let mut host_offsets = Vec::with_capacity(cfg.num_hosts + 1);
    let mut acc = 0u32;
    host_offsets.push(0);
    for &c in &host_counts {
        acc += c;
        host_offsets.push(acc);
    }
    let mut cursor = host_offsets.clone();
    let mut host_pages = vec![PageId(0); cfg.num_pages];
    for (i, p) in pages.iter().enumerate() {
        let h = p.host.0 as usize;
        host_pages[cursor[h] as usize] = PageId(i as u32);
        cursor[h] += 1;
    }

    // --- Links: preferential attachment with locality. ---
    // `cited` is the repeated-targets pool implementing preferential
    // attachment in O(1): sampling uniformly from it is sampling
    // proportionally to (in-degree + implicit smoothing from seeding).
    let mut cited: Vec<PageId> =
        Vec::with_capacity((cfg.num_pages as f64 * cfg.mean_out_degree) as usize);
    let mut link_offsets: Vec<u32> = Vec::with_capacity(cfg.num_pages + 1);
    let mut link_targets: Vec<PageId> =
        Vec::with_capacity((cfg.num_pages as f64 * cfg.mean_out_degree) as usize);
    link_offsets.push(0);
    // Out-degree ~ 1 + Poisson-ish via geometric mixture: draw around mean.
    #[allow(clippy::needless_range_loop)] // p is also the page id being built
    for p in 0..cfg.num_pages {
        let pid = PageId(p as u32);
        let host = pages[p].host;
        let host_lo = host_offsets[host.0 as usize] as usize;
        let host_hi = host_offsets[host.0 as usize + 1] as usize;
        let host_span = host_hi - host_lo;
        // Draw an out-degree with mean `mean_out_degree`:
        // deterministic floor + Bernoulli fraction keeps variance modest.
        let base = cfg.mean_out_degree.floor() as usize;
        let extra = usize::from(rng_link.chance(cfg.mean_out_degree.fract()));
        let out_deg = base + extra;
        for _ in 0..out_deg {
            let target = if rng_link.chance(cfg.locality) && host_span > 1 {
                // Local link: uniform page on the same host, not self.
                loop {
                    let t = host_pages[host_lo + rng_link.index(host_span)];
                    if t != pid {
                        break t;
                    }
                }
            } else {
                // Remote link: preferential attachment over all pages seen
                // so far, with uniform fallback for exploration.
                if !cited.is_empty() && rng_link.chance(cfg.preferential) {
                    cited[rng_link.index(cited.len())]
                } else {
                    PageId(rng_link.below(cfg.num_pages as u64) as u32)
                }
            };
            if target == pid {
                continue; // drop self-links
            }
            link_targets.push(target);
            cited.push(target);
        }
        link_offsets.push(link_targets.len() as u32);
    }

    SyntheticWeb {
        pages,
        hosts,
        link_offsets,
        link_targets,
        host_offsets,
        host_pages,
        num_topics: cfg.num_topics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = WebConfig::tiny();
        let a = generate_web(&cfg, 7);
        let b = generate_web(&cfg, 7);
        assert_eq!(a.num_links(), b.num_links());
        assert_eq!(a.in_degrees(), b.in_degrees());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = WebConfig::tiny();
        let a = generate_web(&cfg, 1);
        let b = generate_web(&cfg, 2);
        assert_ne!(a.in_degrees(), b.in_degrees());
    }

    #[test]
    fn no_empty_hosts() {
        let web = generate_web(&WebConfig::tiny(), 3);
        for h in web.host_ids() {
            assert!(!web.pages_of_host(h).is_empty(), "host {h:?} empty");
        }
    }

    #[test]
    fn host_sizes_are_skewed() {
        let web = generate_web(&WebConfig::tiny(), 5);
        let sizes: Vec<usize> = web.host_ids().map(|h| web.pages_of_host(h).len()).collect();
        let max = *sizes.iter().max().unwrap();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(max as f64 > 3.0 * mean, "max={max} mean={mean}");
    }

    #[test]
    fn locality_dial_works() {
        let mut lo_cfg = WebConfig::tiny();
        lo_cfg.locality = 0.1;
        let mut hi_cfg = WebConfig::tiny();
        hi_cfg.locality = 0.9;
        let lo = generate_web(&lo_cfg, 11).link_locality();
        let hi = generate_web(&hi_cfg, 11).link_locality();
        assert!(lo < 0.35, "lo={lo}");
        assert!(hi > 0.6, "hi={hi}");
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let web = generate_web(&WebConfig::tiny(), 13);
        let deg = web.in_degrees();
        let mut sorted = deg.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Top 1% of pages should hold a disproportionate share of in-links.
        let top = sorted.iter().take(deg.len() / 100).map(|&d| u64::from(d)).sum::<u64>();
        let total = sorted.iter().map(|&d| u64::from(d)).sum::<u64>();
        // Top 1% of pages hold at least twice their uniform share (the
        // locality-diluted preferential attachment still concentrates
        // citations; larger webs concentrate much more).
        assert!(top as f64 / total as f64 > 0.02, "top share {}", top as f64 / total as f64);
        // Power-law exponent in a plausible range (2..4 for PA graphs).
        let alpha = web.in_degree_power_law_exponent(5).expect("enough tail pages");
        assert!(alpha > 1.5 && alpha < 5.0, "alpha={alpha}");
    }

    #[test]
    fn no_self_links() {
        let web = generate_web(&WebConfig::tiny(), 17);
        for p in web.page_ids() {
            assert!(web.outlinks(p).iter().all(|&t| t != p));
        }
    }

    #[test]
    fn page_topics_mostly_match_host() {
        let web = generate_web(&WebConfig::tiny(), 19);
        let matching = web
            .page_ids()
            .filter(|&p| web.page(p).topic == web.host(web.page(p).host).topic)
            .count();
        let frac = matching as f64 / web.num_pages() as f64;
        assert!(frac > 0.7, "coherence={frac}");
    }

    #[test]
    fn mean_out_degree_close_to_config() {
        let cfg = WebConfig::tiny();
        let web = generate_web(&cfg, 23);
        let mean = web.num_links() as f64 / web.num_pages() as f64;
        // Self-link drops make it slightly lower than configured.
        assert!((mean - cfg.mean_out_degree).abs() < 1.0, "mean={mean}");
    }
}
