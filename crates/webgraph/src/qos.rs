//! Web-server quality-of-service model.
//!
//! "Servers on the Web are often slow, and some go off-line intermittently
//! or present other transient failures. A distributed Web crawler must be
//! tolerant to transient failures and slow links to be able to cover the
//! Web to a large extent" (Section 3). Each host gets a speed class and an
//! intermittent-outage process; fetches observe a response time or a
//! transient failure.

use crate::graph::HostId;
use dwr_sim::dist::{Exponential, LogNormal};
use dwr_sim::{SimRng, SimTime, MILLISECOND, SECOND};

/// Outcome of attempting to fetch a page from a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Server answered after the given service time (µs).
    Ok(SimTime),
    /// Transient failure (connection refused / timeout); retry later.
    TransientFailure,
}

/// Per-host QoS parameters.
#[derive(Debug, Clone, Copy)]
struct HostQos {
    /// Multiplier on the base service time (1.0 = normal, 10.0 = very slow).
    slowness: f32,
    /// Probability that any given request hits a transient failure window.
    failure_prob: f32,
}

/// QoS model over all hosts.
#[derive(Debug)]
pub struct QosModel {
    hosts: Vec<HostQos>,
    base_service: LogNormal,
    rng: SimRng,
}

/// Configuration of the QoS model.
#[derive(Debug, Clone, Copy)]
pub struct QosConfig {
    /// Fraction of hosts that are "slow" (high service-time multiplier).
    pub slow_fraction: f64,
    /// Service-time multiplier of slow hosts.
    pub slow_factor: f64,
    /// Fraction of hosts that fail intermittently.
    pub flaky_fraction: f64,
    /// Per-request failure probability of flaky hosts.
    pub flaky_failure_prob: f64,
    /// Mean service time of a normal host, in µs.
    pub mean_service_us: f64,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            slow_fraction: 0.1,
            slow_factor: 10.0,
            flaky_fraction: 0.05,
            flaky_failure_prob: 0.3,
            mean_service_us: 200.0 * MILLISECOND as f64,
        }
    }
}

impl QosModel {
    /// Build the model for `num_hosts` hosts; host classes are assigned
    /// deterministically from the seed.
    pub fn new(num_hosts: usize, cfg: QosConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed).fork_named("qos-assign");
        let hosts = (0..num_hosts)
            .map(|_| {
                let slowness =
                    if rng.chance(cfg.slow_fraction) { cfg.slow_factor as f32 } else { 1.0 };
                let failure_prob = if rng.chance(cfg.flaky_fraction) {
                    cfg.flaky_failure_prob as f32
                } else {
                    0.0
                };
                HostQos { slowness, failure_prob }
            })
            .collect();
        QosModel {
            hosts,
            base_service: LogNormal::from_mean_cv(cfg.mean_service_us, 1.0),
            rng: SimRng::new(seed).fork_named("qos-draws"),
        }
    }

    /// Simulate one fetch of `bytes` from `host`.
    ///
    /// The service time covers server think time plus transfer at a nominal
    /// 1 MB/s consumer uplink, scaled by the host's slowness class.
    pub fn fetch(&mut self, host: HostId, bytes: u64) -> FetchOutcome {
        let q = self.hosts[host.0 as usize];
        if self.rng.chance(f64::from(q.failure_prob)) {
            return FetchOutcome::TransientFailure;
        }
        let think = self.base_service.sample(&mut self.rng);
        let transfer = bytes as f64 / 1_000_000.0 * SECOND as f64;
        FetchOutcome::Ok(((think + transfer) * f64::from(q.slowness)) as SimTime)
    }

    /// Whether the host belongs to the flaky class.
    pub fn is_flaky(&self, host: HostId) -> bool {
        self.hosts[host.0 as usize].failure_prob > 0.0
    }

    /// Whether the host belongs to the slow class.
    pub fn is_slow(&self, host: HostId) -> bool {
        self.hosts[host.0 as usize].slowness > 1.0
    }

    /// Number of modelled hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Suggested retry back-off after a transient failure: exponential with
    /// a 30-second mean.
    pub fn retry_backoff(&mut self) -> SimTime {
        Exponential::with_mean(30.0 * SECOND as f64).sample(&mut self.rng) as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_fractions_roughly_respected() {
        let cfg = QosConfig::default();
        let m = QosModel::new(10_000, cfg, 1);
        let slow = (0..10_000).filter(|&h| m.is_slow(HostId(h))).count();
        let flaky = (0..10_000).filter(|&h| m.is_flaky(HostId(h))).count();
        assert!((slow as f64 / 10_000.0 - 0.1).abs() < 0.02);
        assert!((flaky as f64 / 10_000.0 - 0.05).abs() < 0.02);
    }

    #[test]
    fn reliable_host_never_fails() {
        let cfg = QosConfig { flaky_fraction: 0.0, ..QosConfig::default() };
        let mut m = QosModel::new(10, cfg, 2);
        for _ in 0..1000 {
            assert!(matches!(m.fetch(HostId(0), 1000), FetchOutcome::Ok(_)));
        }
    }

    #[test]
    fn flaky_host_fails_sometimes() {
        let cfg =
            QosConfig { flaky_fraction: 1.0, flaky_failure_prob: 0.5, ..QosConfig::default() };
        let mut m = QosModel::new(1, cfg, 3);
        let failures = (0..1000)
            .filter(|_| matches!(m.fetch(HostId(0), 1000), FetchOutcome::TransientFailure))
            .count();
        assert!((failures as f64 / 1000.0 - 0.5).abs() < 0.07, "failures={failures}");
    }

    #[test]
    fn slow_hosts_are_slower() {
        let cfg = QosConfig { slow_fraction: 0.5, flaky_fraction: 0.0, ..QosConfig::default() };
        let mut m = QosModel::new(1000, cfg, 4);
        let mut slow_sum = 0.0;
        let mut fast_sum = 0.0;
        let mut slow_n = 0;
        let mut fast_n = 0;
        for h in 0..1000u32 {
            if let FetchOutcome::Ok(t) = m.fetch(HostId(h), 10_000) {
                if m.is_slow(HostId(h)) {
                    slow_sum += t as f64;
                    slow_n += 1;
                } else {
                    fast_sum += t as f64;
                    fast_n += 1;
                }
            }
        }
        assert!(slow_n > 100 && fast_n > 100);
        assert!(slow_sum / slow_n as f64 > 3.0 * (fast_sum / fast_n as f64));
    }

    #[test]
    fn larger_pages_take_longer_on_average() {
        let cfg = QosConfig { slow_fraction: 0.0, flaky_fraction: 0.0, ..QosConfig::default() };
        let mut m = QosModel::new(1, cfg, 5);
        let avg = |m: &mut QosModel, bytes: u64| -> f64 {
            let mut s = 0.0;
            for _ in 0..500 {
                if let FetchOutcome::Ok(t) = m.fetch(HostId(0), bytes) {
                    s += t as f64;
                }
            }
            s / 500.0
        };
        let small = avg(&mut m, 1_000);
        let large = avg(&mut m, 5_000_000);
        assert!(large > small * 2.0, "small={small} large={large}");
    }

    #[test]
    fn backoff_positive() {
        let mut m = QosModel::new(1, QosConfig::default(), 6);
        for _ in 0..100 {
            assert!(m.retry_backoff() > 0);
        }
    }
}
