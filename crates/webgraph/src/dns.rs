//! DNS model: resolution latency and a crawler-side cache.
//!
//! "DNS is frequently a bottleneck for the operation of a Web crawler (...)
//! A common solution is to cache DNS lookup results" (Section 3, external
//! factors). The model charges a latency per uncached lookup, drawn from a
//! long-tailed distribution, and exposes a bounded LRU cache with TTL so
//! experiments can quantify how much caching buys.

use crate::graph::HostId;
use dwr_sim::dist::LogNormal;
use dwr_sim::{SimRng, SimTime, MILLISECOND};
use std::collections::HashMap;

/// The authoritative resolver: maps host → address with a latency cost.
#[derive(Debug, Clone)]
pub struct DnsServer {
    latency: LogNormal,
    rng: SimRng,
}

impl DnsServer {
    /// Create a resolver with the given mean lookup latency (µs) and
    /// coefficient of variation. Real-world resolution is long-tailed;
    /// cv ≈ 2 reproduces the occasional multi-second lookup.
    pub fn new(mean_latency_us: f64, cv: f64, rng: SimRng) -> Self {
        DnsServer { latency: LogNormal::from_mean_cv(mean_latency_us, cv), rng }
    }

    /// A typical resolver: 40 ms mean, heavy tail.
    pub fn typical(rng: SimRng) -> Self {
        Self::new(40.0 * MILLISECOND as f64, 2.0, rng)
    }

    /// Resolve a host, returning the simulated lookup latency.
    pub fn resolve(&mut self, _host: HostId) -> SimTime {
        self.latency.sample(&mut self.rng) as SimTime
    }
}

/// Statistics of a [`DnsCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DnsStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to go to the resolver.
    pub misses: u64,
    /// Total simulated time spent on resolver round-trips.
    pub total_lookup_time: SimTime,
}

impl DnsStats {
    /// Cache hit ratio (0 when no lookups were made).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Crawler-side DNS cache with TTL expiry and capacity-bounded LRU-ish
/// eviction (evicts the entry expiring soonest when full — a good proxy
/// for LRU under uniform TTLs without a linked list).
#[derive(Debug)]
pub struct DnsCache {
    server: DnsServer,
    ttl: SimTime,
    capacity: usize,
    entries: HashMap<HostId, SimTime>, // host -> expiry time
    stats: DnsStats,
}

impl DnsCache {
    /// Create a cache in front of `server` with entry lifetime `ttl` and
    /// at most `capacity` entries.
    pub fn new(server: DnsServer, ttl: SimTime, capacity: usize) -> Self {
        assert!(capacity > 0);
        DnsCache { server, ttl, capacity, entries: HashMap::new(), stats: DnsStats::default() }
    }

    /// Resolve `host` at simulated time `now`; returns the latency charged
    /// to the caller (0 on a cache hit).
    pub fn resolve(&mut self, host: HostId, now: SimTime) -> SimTime {
        if let Some(&expiry) = self.entries.get(&host) {
            if expiry > now {
                self.stats.hits += 1;
                return 0;
            }
        }
        self.stats.misses += 1;
        let latency = self.server.resolve(host);
        self.stats.total_lookup_time += latency;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&host) {
            // Evict the entry that expires soonest.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(h, &e)| (e, h.0)) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(host, now + latency + self.ttl);
        latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DnsStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_sim::SECOND;

    fn cache(ttl: SimTime, cap: usize) -> DnsCache {
        DnsCache::new(DnsServer::typical(SimRng::new(5)), ttl, cap)
    }

    #[test]
    fn repeated_lookup_hits_cache() {
        let mut c = cache(3600 * SECOND, 100);
        let first = c.resolve(HostId(1), 0);
        assert!(first > 0);
        let second = c.resolve(HostId(1), 1000);
        assert_eq!(second, 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn ttl_expiry_forces_miss() {
        let mut c = cache(10 * SECOND, 100);
        let l1 = c.resolve(HostId(1), 0);
        // Far beyond expiry.
        let l2 = c.resolve(HostId(1), l1 + 100 * SECOND);
        assert!(l2 > 0);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn capacity_bounded() {
        let mut c = cache(3600 * SECOND, 4);
        for h in 0..20u32 {
            c.resolve(HostId(h), u64::from(h));
        }
        assert!(c.entries.len() <= 4);
    }

    #[test]
    fn hit_ratio_grows_with_locality() {
        let mut c = cache(3600 * SECOND, 1000);
        // Zipf-like access: host 0 over and over, others once.
        for i in 0..100u32 {
            c.resolve(HostId(0), u64::from(i) * 1000);
            c.resolve(HostId(i + 1), u64::from(i) * 1000 + 1);
        }
        assert!(c.stats().hit_ratio() > 0.45);
    }

    #[test]
    fn empty_stats_safe() {
        let c = cache(SECOND, 1);
        assert_eq!(c.stats().hit_ratio(), 0.0);
    }
}
