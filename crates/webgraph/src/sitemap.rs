//! Robots exclusion and sitemaps — the server side of crawler cooperation.
//!
//! Section 3: crawlers must respect exclusion rules \[3, 4\], and "recently
//! three of the largest search engines agreed on a standard for this type
//! of server-crawler cooperation (`http://www.sitemaps.org/`)". The models
//! here are deterministic functions of the web's seed:
//!
//! * [`RobotsPolicy`] — each host disallows a (host-dependent) fraction of
//!   its pages; a polite crawler never fetches them;
//! * [`SitemapIndex`] — a fraction of hosts publish a sitemap listing all
//!   their pages, so one fetch discovers the whole host without waiting
//!   for link extraction.

use crate::graph::{HostId, PageId, SyntheticWeb};
use dwr_sim::SimRng;

/// Deterministic per-page robots exclusion.
#[derive(Debug, Clone)]
pub struct RobotsPolicy {
    /// Per-host disallow fraction (0 = everything allowed).
    host_fraction: Vec<f32>,
    seed: u64,
}

impl RobotsPolicy {
    /// Build a policy: a `restrictive_fraction` of hosts disallow
    /// `disallow_fraction` of their pages; the rest allow everything.
    pub fn generate(
        web: &SyntheticWeb,
        restrictive_fraction: f64,
        disallow_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&restrictive_fraction));
        assert!((0.0..=1.0).contains(&disallow_fraction));
        let mut rng = SimRng::new(seed).fork_named("robots");
        let host_fraction = (0..web.num_hosts())
            .map(|_| if rng.chance(restrictive_fraction) { disallow_fraction as f32 } else { 0.0 })
            .collect();
        RobotsPolicy { host_fraction, seed }
    }

    /// A policy allowing everything.
    pub fn allow_all(web: &SyntheticWeb) -> Self {
        RobotsPolicy { host_fraction: vec![0.0; web.num_hosts()], seed: 0 }
    }

    /// Whether a polite crawler may fetch `page`.
    pub fn allowed(&self, page: PageId, web: &SyntheticWeb) -> bool {
        let host = web.page(page).host;
        let f = self.host_fraction[host.0 as usize];
        if f <= 0.0 {
            return true;
        }
        // Stable per-page draw from (seed, page).
        let mut z = (self.seed ^ u64::from(page.0).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) >= f64::from(f)
    }

    /// Number of allowed pages in the whole web.
    pub fn allowed_count(&self, web: &SyntheticWeb) -> usize {
        web.page_ids().filter(|&p| self.allowed(p, web)).count()
    }
}

/// Which hosts publish sitemaps.
#[derive(Debug, Clone)]
pub struct SitemapIndex {
    has_sitemap: Vec<bool>,
}

impl SitemapIndex {
    /// A `fraction` of hosts (chosen deterministically) publish sitemaps.
    pub fn generate(web: &SyntheticWeb, fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        let mut rng = SimRng::new(seed).fork_named("sitemaps");
        SitemapIndex { has_sitemap: (0..web.num_hosts()).map(|_| rng.chance(fraction)).collect() }
    }

    /// No host publishes a sitemap.
    pub fn none(web: &SyntheticWeb) -> Self {
        SitemapIndex { has_sitemap: vec![false; web.num_hosts()] }
    }

    /// Whether `host` publishes a sitemap.
    pub fn has(&self, host: HostId) -> bool {
        self.has_sitemap[host.0 as usize]
    }

    /// The sitemap contents: every page of the host.
    pub fn pages<'w>(&self, host: HostId, web: &'w SyntheticWeb) -> &'w [PageId] {
        debug_assert!(self.has(host), "host publishes no sitemap");
        web.pages_of_host(host)
    }

    /// Fraction of hosts with sitemaps.
    pub fn coverage(&self) -> f64 {
        if self.has_sitemap.is_empty() {
            return 0.0;
        }
        self.has_sitemap.iter().filter(|&&b| b).count() as f64 / self.has_sitemap.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_web, WebConfig};

    fn web() -> SyntheticWeb {
        generate_web(&WebConfig::tiny(), 66)
    }

    #[test]
    fn allow_all_allows_everything() {
        let w = web();
        let r = RobotsPolicy::allow_all(&w);
        assert_eq!(r.allowed_count(&w), w.num_pages());
    }

    #[test]
    fn disallow_fraction_is_respected() {
        let w = web();
        let r = RobotsPolicy::generate(&w, 1.0, 0.3, 9);
        let allowed = r.allowed_count(&w) as f64 / w.num_pages() as f64;
        assert!((allowed - 0.7).abs() < 0.05, "allowed={allowed}");
    }

    #[test]
    fn decision_is_stable() {
        let w = web();
        let r = RobotsPolicy::generate(&w, 0.5, 0.5, 10);
        for p in w.page_ids().take(200) {
            assert_eq!(r.allowed(p, &w), r.allowed(p, &w));
        }
    }

    #[test]
    fn unrestrictive_hosts_fully_allowed() {
        let w = web();
        let r = RobotsPolicy::generate(&w, 0.0, 0.9, 11);
        assert_eq!(r.allowed_count(&w), w.num_pages());
    }

    #[test]
    fn sitemap_fraction_respected() {
        let w = web();
        let s = SitemapIndex::generate(&w, 0.4, 12);
        assert!((s.coverage() - 0.4).abs() < 0.15);
        assert_eq!(SitemapIndex::none(&w).coverage(), 0.0);
    }

    #[test]
    fn sitemap_lists_whole_host() {
        let w = web();
        let s = SitemapIndex::generate(&w, 1.0, 13);
        for h in w.host_ids().take(10) {
            assert!(s.has(h));
            assert_eq!(s.pages(h, &w), w.pages_of_host(h));
        }
    }
}
