//! Property-based tests of the synthetic-Web generator's invariants.

use dwr_sim::SimRng;
use dwr_webgraph::content::ContentModel;
use dwr_webgraph::generate::{generate_web, WebConfig};
use dwr_webgraph::graph::TopicId;
use dwr_webgraph::sitemap::{RobotsPolicy, SitemapIndex};
use proptest::prelude::*;

fn small_cfg(pages: usize, hosts: usize, topics: u16) -> WebConfig {
    let mut c = WebConfig::tiny();
    c.num_pages = pages;
    c.num_hosts = hosts;
    c.num_topics = topics;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Structural invariants hold for any generator parameters.
    #[test]
    fn web_structure_invariants(
        seed in any::<u64>(),
        pages in 100usize..600,
        hosts in 5usize..50,
        topics in 1u16..12,
        locality in 0.0f64..1.0
    ) {
        prop_assume!(pages >= hosts);
        let mut cfg = small_cfg(pages, hosts, topics);
        cfg.locality = locality;
        let web = generate_web(&cfg, seed);
        prop_assert_eq!(web.num_pages(), pages);
        prop_assert_eq!(web.num_hosts(), hosts);
        // Host lists partition the page set.
        let total: usize = web.host_ids().map(|h| web.pages_of_host(h).len()).sum();
        prop_assert_eq!(total, pages);
        // No empty hosts, no self links, in-degrees consistent.
        for h in web.host_ids() {
            prop_assert!(!web.pages_of_host(h).is_empty());
        }
        let deg_sum: u64 = web.in_degrees().iter().map(|&d| u64::from(d)).sum();
        prop_assert_eq!(deg_sum as usize, web.num_links());
        for p in web.page_ids() {
            prop_assert!(web.outlinks(p).iter().all(|&t| t != p));
            prop_assert!((web.page(p).topic.0) < topics);
        }
    }

    /// The same seed always regenerates the same web.
    #[test]
    fn generation_deterministic(seed in any::<u64>()) {
        let cfg = small_cfg(200, 10, 4);
        let a = generate_web(&cfg, seed);
        let b = generate_web(&cfg, seed);
        prop_assert_eq!(a.in_degrees(), b.in_degrees());
        prop_assert_eq!(a.link_locality(), b.link_locality());
    }

    /// Documents only contain terms from the background or their own
    /// topic's slice, never another topic's.
    #[test]
    fn content_never_leaks_other_topics(seed in any::<u64>(), topic in 0u16..8) {
        let m = ContentModel::small(8);
        let mut rng = SimRng::new(seed);
        let doc = m.sample_document(TopicId(topic), &mut rng);
        for (t, tf) in doc {
            prop_assert!(tf >= 1);
            if let Some(owner) = m.topic_of_term(t) {
                prop_assert_eq!(owner, TopicId(topic));
            }
        }
    }

    /// Robots decisions are stable and the allowed count matches the
    /// per-page predicate.
    #[test]
    fn robots_consistent(seed in any::<u64>(), restrictive in 0.0f64..1.0, disallow in 0.0f64..1.0) {
        let web = generate_web(&small_cfg(200, 10, 4), 7);
        let r = RobotsPolicy::generate(&web, restrictive, disallow, seed);
        let direct = web.page_ids().filter(|&p| r.allowed(p, &web)).count();
        prop_assert_eq!(direct, r.allowed_count(&web));
    }

    /// A sitemap always lists exactly the host's pages.
    #[test]
    fn sitemaps_list_host_pages(seed in any::<u64>(), fraction in 0.0f64..1.0) {
        let web = generate_web(&small_cfg(200, 10, 4), 8);
        let s = SitemapIndex::generate(&web, fraction, seed);
        for h in web.host_ids() {
            if s.has(h) {
                prop_assert_eq!(s.pages(h, &web), web.pages_of_host(h));
            }
        }
        prop_assert!((0.0..=1.0).contains(&s.coverage()));
    }
}
