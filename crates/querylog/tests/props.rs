//! Property-based tests of the query-stream models.

use dwr_querylog::arrival::{generate_arrivals, DiurnalProfile};
use dwr_querylog::drift::TopicDrift;
use dwr_querylog::model::{QueryId, QueryModel};
use dwr_sim::{SimRng, DAY, HOUR};
use dwr_webgraph::content::ContentModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Query universes are well-formed for any parameterization.
    #[test]
    fn query_universe_well_formed(
        seed in any::<u64>(),
        universe in 1usize..500,
        topic_skew in 0.0f64..2.0,
        pop in 0.5f64..1.5
    ) {
        let content = ContentModel::small(8);
        let m = QueryModel::generate(&content, universe, topic_skew, pop, seed);
        prop_assert_eq!(m.universe(), universe);
        for i in 0..universe {
            let q = m.query(QueryId(i as u32));
            prop_assert!(!q.terms.is_empty() && q.terms.len() <= 4);
            prop_assert!(q.terms.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(q.topic.0 < 8);
        }
        // Sampling stays in the universe.
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!((m.sample(&mut rng).0 as usize) < universe);
        }
    }

    /// Popularity weights decay with rank.
    #[test]
    fn popularity_monotone(seed in any::<u64>()) {
        let content = ContentModel::small(8);
        let m = QueryModel::generate(&content, 100, 0.5, 0.9, seed);
        for i in 0..99u32 {
            prop_assert!(m.popularity_weight(QueryId(i)) >= m.popularity_weight(QueryId(i + 1)));
        }
    }

    /// Arrivals are ordered, in-horizon, and the diurnal rate integrates
    /// to roughly the configured mean.
    #[test]
    fn arrivals_well_formed(seed in any::<u64>(), qps in 0.1f64..5.0, phase in 0.0f64..1.0) {
        let p = DiurnalProfile { mean_qps: qps, amplitude: 0.7, phase };
        let arr = generate_arrivals(&[p], 6 * HOUR, seed);
        prop_assert!(arr.windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert!(arr.iter().all(|a| a.time < 6 * HOUR && a.region == 0));
    }

    /// Drifted weights are always a valid mixture and interpolate the
    /// endpoints.
    #[test]
    fn drift_weights_valid(
        start in prop::collection::vec(0.01f64..10.0, 2..8),
        t_frac in 0.0f64..1.0
    ) {
        let drift = TopicDrift::reversal(&start, DAY);
        let t = (t_frac * DAY as f64) as u64;
        let w = drift.weights_at(t);
        prop_assert_eq!(w.len(), start.len());
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        prop_assert!(w.iter().sum::<f64>() > 0.0);
        // Endpoints.
        let w0 = drift.weights_at(0);
        for (a, b) in w0.iter().zip(&start) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Topic sampling respects the support.
    #[test]
    fn drift_sampling_in_support(seed in any::<u64>(), arity in 2usize..8) {
        let weights = vec![1.0; arity];
        let drift = TopicDrift::none(&weights, DAY);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!((drift.sample_topic(DAY / 2, &mut rng) as usize) < arity);
        }
    }
}
