//! The query universe: distinct queries with Zipfian popularity.
//!
//! Real logs show (a) query popularity is Zipfian with exponent near 0.8–1
//! (this is what makes results caching effective — Section 5), (b) query
//! length concentrates on 1–4 terms, and (c) queries are topically
//! focused. The model ties query vocabulary to the corpus
//! [`ContentModel`] so queries
//! actually retrieve the documents of their topic.

use dwr_sim::dist::Zipf;
use dwr_sim::SimRng;
use dwr_webgraph::content::ContentModel;
use dwr_webgraph::graph::TopicId;
use dwr_webgraph::TermId;

/// Identifier of a distinct query (dense, `0..universe`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

/// One distinct query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryDef {
    /// Sorted, deduplicated term ids.
    pub terms: Vec<TermId>,
    /// The topic the query is about.
    pub topic: TopicId,
}

/// A universe of distinct queries plus a popularity distribution over them.
///
/// Popularity rank is assigned by id: query 0 is the most popular. Draws
/// come from a Zipf over ids, so the stream has the head/tail structure
/// caching experiments need.
#[derive(Debug, Clone)]
pub struct QueryModel {
    queries: Vec<QueryDef>,
    popularity: Zipf,
    /// Per-topic weights used when drawing fresh topical queries.
    topic_weights: Vec<f64>,
}

impl QueryModel {
    /// Generate `universe` distinct queries against `content`.
    ///
    /// `topic_skew` is the Zipf exponent of topic popularity: 0 gives
    /// uniform topics, 1 a strongly skewed topic mix.
    /// `popularity_exponent` is the Zipf exponent of the query-frequency
    /// distribution (0.8–1.0 is realistic).
    pub fn generate(
        content: &ContentModel,
        universe: usize,
        topic_skew: f64,
        popularity_exponent: f64,
        seed: u64,
    ) -> Self {
        assert!(universe > 0);
        let mut rng = SimRng::new(seed).fork_named("query-universe");
        let t = content.num_topics();
        let topic_weights: Vec<f64> =
            (1..=t).map(|rank| (f64::from(rank)).powf(-topic_skew)).collect();
        let topic_zipf_total: f64 = topic_weights.iter().sum();
        let mut queries = Vec::with_capacity(universe);
        for _ in 0..universe {
            // Topic by weight.
            let mut x = rng.f64() * topic_zipf_total;
            let mut topic = 0u16;
            for (i, w) in topic_weights.iter().enumerate() {
                if x < *w {
                    topic = i as u16;
                    break;
                }
                x -= w;
            }
            // Length: 1..=4 with realistic mass on 2–3.
            let len = match rng.f64() {
                x if x < 0.25 => 1,
                x if x < 0.65 => 2,
                x if x < 0.9 => 3,
                _ => 4,
            };
            let terms = content.sample_query_terms(TopicId(topic), len, &mut rng);
            queries.push(QueryDef { terms, topic: TopicId(topic) });
        }
        QueryModel {
            queries,
            popularity: Zipf::new(universe as u64, popularity_exponent),
            topic_weights,
        }
    }

    /// Number of distinct queries.
    pub fn universe(&self) -> usize {
        self.queries.len()
    }

    /// Definition of a query.
    pub fn query(&self, id: QueryId) -> &QueryDef {
        &self.queries[id.0 as usize]
    }

    /// Draw one query id according to popularity.
    pub fn sample(&self, rng: &mut SimRng) -> QueryId {
        QueryId((self.popularity.sample(rng) - 1) as u32)
    }

    /// Relative popularity weight of a query (unnormalized `rank^-1`
    /// estimate used by weighting heuristics such as bin-packing).
    /// Query ids are popularity ranks; rank 1 = id 0.
    pub fn popularity_weight(&self, id: QueryId) -> f64 {
        (f64::from(id.0) + 1.0).recip()
    }

    /// Per-topic popularity weights (unnormalized).
    pub fn topic_weights(&self) -> &[f64] {
        &self.topic_weights
    }

    /// Draw one query id according to popularity, **restricted to
    /// `topic`**: draws are rejection-sampled until one lands on the
    /// topic, preserving the Zipf head/tail structure within it. Feeds
    /// drifting workloads ([`crate::drift::TopicDrift`] picks the topic,
    /// this picks the query). Falls back to an unrestricted draw when
    /// the universe has no query of `topic`.
    pub fn sample_topical(&self, topic: TopicId, rng: &mut SimRng) -> QueryId {
        if !self.queries.iter().any(|q| q.topic == topic) {
            return self.sample(rng);
        }
        loop {
            let id = self.sample(rng);
            if self.query(id).topic == topic {
                return id;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn content() -> ContentModel {
        ContentModel::small(8)
    }

    #[test]
    fn universe_size_and_determinism() {
        let c = content();
        let a = QueryModel::generate(&c, 500, 0.5, 0.9, 7);
        let b = QueryModel::generate(&c, 500, 0.5, 0.9, 7);
        assert_eq!(a.universe(), 500);
        for i in 0..500 {
            assert_eq!(a.query(QueryId(i)), b.query(QueryId(i)));
        }
    }

    #[test]
    fn query_lengths_in_range() {
        let m = QueryModel::generate(&content(), 1000, 0.5, 0.9, 8);
        for i in 0..1000 {
            let q = m.query(QueryId(i));
            assert!(!q.terms.is_empty() && q.terms.len() <= 4);
            // sorted & deduped
            assert!(q.terms.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn popular_queries_dominate_stream() {
        let m = QueryModel::generate(&content(), 10_000, 0.5, 1.0, 9);
        let mut rng = SimRng::new(10);
        let n = 50_000;
        let head = (0..n)
            .filter(|_| m.sample(&mut rng).0 < 100) // top 1% of ids
            .count();
        // Zipf(1.0) over 10k: top-100 mass ≈ H(100)/H(10000) ≈ 5.19/9.79 ≈ 0.53
        let frac = head as f64 / n as f64;
        assert!(frac > 0.4, "head mass = {frac}");
    }

    #[test]
    fn topic_skew_skews_topics() {
        let c = content();
        let skewed = QueryModel::generate(&c, 5000, 1.5, 0.9, 11);
        let topic0 = (0..5000).filter(|&i| skewed.query(QueryId(i)).topic == TopicId(0)).count();
        assert!(topic0 as f64 / 5000.0 > 0.3, "topic0 share {}", topic0 as f64 / 5000.0);

        let uniform = QueryModel::generate(&c, 5000, 0.0, 0.9, 11);
        let topic0u = (0..5000).filter(|&i| uniform.query(QueryId(i)).topic == TopicId(0)).count();
        assert!((topic0u as f64 / 5000.0 - 1.0 / 8.0).abs() < 0.05);
    }

    #[test]
    fn sample_topical_stays_on_topic() {
        let m = QueryModel::generate(&content(), 2000, 0.5, 0.9, 13);
        let mut rng = SimRng::new(14);
        for t in 0..4u16 {
            let id = m.sample_topical(TopicId(t), &mut rng);
            assert_eq!(m.query(id).topic, TopicId(t));
        }
        // An absent topic falls back to an unrestricted draw.
        let id = m.sample_topical(TopicId(200), &mut rng);
        assert!(id.0 < 2000);
    }

    #[test]
    fn popularity_weight_monotone() {
        let m = QueryModel::generate(&content(), 100, 0.5, 0.9, 12);
        assert!(m.popularity_weight(QueryId(0)) > m.popularity_weight(QueryId(1)));
        assert!(m.popularity_weight(QueryId(1)) > m.popularity_weight(QueryId(50)));
    }
}
