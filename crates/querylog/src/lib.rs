//! # dwr-querylog — synthetic query streams
//!
//! "The scale and complexity of Web search engines, as well as the volume
//! of queries submitted every day by users, make query logs a critical
//! source of information" (Section 4). Every query-driven technique the
//! paper surveys — SDC caching \[51\], bin-packed term partitioning \[21\],
//! query-driven co-clustering \[19\], hourly load shifting \[33\] — needs a
//! query stream with the right statistics. This crate generates one:
//!
//! * [`model`] — a universe of distinct queries with Zipfian popularity,
//!   topical composition tied to the corpus content model, and realistic
//!   length distribution;
//! * [`arrival`] — a non-homogeneous Poisson arrival process with per-region
//!   diurnal profiles (Beitzel et al.'s hourly fluctuation);
//! * [`drift`] — slow topic-distribution drift, the "changing user needs"
//!   external factor of Table 1;
//! * [`click`] — a position-biased click model producing the
//!   (query, clicked document) pairs co-clustering consumes;
//! * [`log`] — materialized logs with train/test splitting.

pub mod arrival;
pub mod click;
pub mod drift;
pub mod log;
pub mod model;

pub use log::{LogRecord, QueryLog};
pub use model::{QueryDef, QueryId, QueryModel};
