//! Position-biased click model.
//!
//! Query-driven document partitioning \[19\] learns from which documents a
//! query *returned and users engaged with*. We model clicks with the
//! standard examination hypothesis: the user examines rank `r` with
//! probability `examination(r)` and clicks an examined result with a
//! relevance-dependent attractiveness.

use dwr_sim::SimRng;
use dwr_webgraph::graph::PageId;

/// Click model parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClickModel {
    /// Examination decay: P(examine rank r) = 1 / r^eta (1-based rank).
    pub eta: f64,
    /// Click probability of an examined, on-topic result.
    pub attract_relevant: f64,
    /// Click probability of an examined, off-topic result.
    pub attract_irrelevant: f64,
}

impl Default for ClickModel {
    fn default() -> Self {
        ClickModel { eta: 1.0, attract_relevant: 0.65, attract_irrelevant: 0.1 }
    }
}

impl ClickModel {
    /// Probability the user examines 1-based `rank`.
    pub fn examination(&self, rank: usize) -> f64 {
        (rank as f64).powf(-self.eta)
    }

    /// Simulate clicks on a ranked result list.
    ///
    /// `relevant[i]` flags whether result `i` is on-topic for the query.
    /// Returns the clicked pages in rank order.
    pub fn clicks(&self, results: &[PageId], relevant: &[bool], rng: &mut SimRng) -> Vec<PageId> {
        assert_eq!(results.len(), relevant.len());
        let mut out = Vec::new();
        for (i, (&page, &rel)) in results.iter().zip(relevant).enumerate() {
            let p_exam = self.examination(i + 1);
            let p_attract = if rel { self.attract_relevant } else { self.attract_irrelevant };
            if rng.chance(p_exam * p_attract) {
                out.push(page);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examination_decays() {
        let m = ClickModel::default();
        assert!((m.examination(1) - 1.0).abs() < 1e-12);
        assert!(m.examination(2) < m.examination(1));
        assert!(m.examination(10) < m.examination(2));
    }

    #[test]
    fn top_ranked_relevant_clicked_most() {
        let m = ClickModel::default();
        let results: Vec<PageId> = (0..10).map(PageId).collect();
        let relevant = vec![true; 10];
        let mut rng = SimRng::new(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            for p in m.clicks(&results, &relevant, &mut rng) {
                counts[p.0 as usize] += 1;
            }
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        // Rank-1 CTR ≈ attract_relevant.
        let ctr1 = counts[0] as f64 / 20_000.0;
        assert!((ctr1 - 0.65).abs() < 0.02, "ctr1={ctr1}");
    }

    #[test]
    fn irrelevant_results_rarely_clicked() {
        let m = ClickModel::default();
        let results = vec![PageId(0)];
        let mut rng = SimRng::new(2);
        let rel_clicks =
            (0..10_000).filter(|_| !m.clicks(&results, &[true], &mut rng).is_empty()).count();
        let irr_clicks =
            (0..10_000).filter(|_| !m.clicks(&results, &[false], &mut rng).is_empty()).count();
        assert!(rel_clicks as f64 > 4.0 * irr_clicks as f64);
    }

    #[test]
    fn clicks_preserve_rank_order() {
        let m = ClickModel { eta: 0.0, attract_relevant: 1.0, attract_irrelevant: 1.0 };
        let results: Vec<PageId> = [5u32, 3, 9].iter().map(|&i| PageId(i)).collect();
        let mut rng = SimRng::new(3);
        let clicks = m.clicks(&results, &[true, true, true], &mut rng);
        assert_eq!(clicks, results);
    }

    #[test]
    fn empty_results_no_clicks() {
        let m = ClickModel::default();
        let mut rng = SimRng::new(4);
        assert!(m.clicks(&[], &[], &mut rng).is_empty());
    }
}
