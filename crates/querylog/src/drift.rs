//! Topic drift: the "changing user needs" external factor.
//!
//! "The topics the users search for have slowly changed in the past \[52\],
//! and a reconfiguration of the search engine resources might be necessary"
//! (Section 5, external factors). The drift process interpolates the topic
//! mixture from a start distribution to an end distribution over a horizon,
//! so experiments can measure how partitionings and caches trained on the
//! old mixture degrade.

use dwr_sim::{SimRng, SimTime};

/// A linearly drifting categorical distribution over topics.
#[derive(Debug, Clone)]
pub struct TopicDrift {
    start: Vec<f64>,
    end: Vec<f64>,
    horizon: SimTime,
}

impl TopicDrift {
    /// Create a drift from `start` to `end` over `horizon`.
    ///
    /// Both distributions must have the same arity and positive mass.
    pub fn new(start: Vec<f64>, end: Vec<f64>, horizon: SimTime) -> Self {
        assert_eq!(start.len(), end.len(), "distribution arity mismatch");
        assert!(!start.is_empty());
        assert!(horizon > 0);
        assert!(start.iter().chain(end.iter()).all(|&w| w >= 0.0));
        assert!(start.iter().sum::<f64>() > 0.0 && end.iter().sum::<f64>() > 0.0);
        TopicDrift { start, end, horizon }
    }

    /// A "rotation" drift: the mass order of topics is reversed by the end
    /// of the horizon — the adversarial case for a trained partitioning.
    pub fn reversal(weights: &[f64], horizon: SimTime) -> Self {
        let mut end = weights.to_vec();
        end.reverse();
        Self::new(weights.to_vec(), end, horizon)
    }

    /// No drift at all (control condition).
    pub fn none(weights: &[f64], horizon: SimTime) -> Self {
        Self::new(weights.to_vec(), weights.to_vec(), horizon)
    }

    /// Number of topics.
    pub fn arity(&self) -> usize {
        self.start.len()
    }

    /// The interpolated weights at time `t` (clamped to the horizon).
    pub fn weights_at(&self, t: SimTime) -> Vec<f64> {
        let f = (t as f64 / self.horizon as f64).min(1.0);
        self.start.iter().zip(&self.end).map(|(&a, &b)| a * (1.0 - f) + b * f).collect()
    }

    /// Draw a topic index at time `t`.
    pub fn sample_topic(&self, t: SimTime, rng: &mut SimRng) -> u16 {
        let w = self.weights_at(t);
        let total: f64 = w.iter().sum();
        let mut x = rng.f64() * total;
        for (i, &wi) in w.iter().enumerate() {
            if x < wi {
                return i as u16;
            }
            x -= wi;
        }
        (w.len() - 1) as u16
    }

    /// Total-variation distance between the mixtures at two times — a
    /// drift detector's ground truth.
    pub fn tv_distance(&self, t0: SimTime, t1: SimTime) -> f64 {
        let a = normalize(&self.weights_at(t0));
        let b = normalize(&self.weights_at(t1));
        0.5 * a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f64>()
    }
}

fn normalize(w: &[f64]) -> Vec<f64> {
    let s: f64 = w.iter().sum();
    w.iter().map(|&x| x / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_sim::DAY;

    #[test]
    fn endpoints_match() {
        let d = TopicDrift::new(vec![0.7, 0.3], vec![0.2, 0.8], DAY);
        assert_eq!(d.weights_at(0), vec![0.7, 0.3]);
        assert_eq!(d.weights_at(DAY), vec![0.2, 0.8]);
        // Clamped beyond horizon.
        assert_eq!(d.weights_at(3 * DAY), vec![0.2, 0.8]);
    }

    #[test]
    fn midpoint_interpolates() {
        let d = TopicDrift::new(vec![1.0, 0.0], vec![0.0, 1.0], DAY);
        let mid = d.weights_at(DAY / 2);
        assert!((mid[0] - 0.5).abs() < 1e-9);
        assert!((mid[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn none_never_drifts() {
        let d = TopicDrift::none(&[0.5, 0.3, 0.2], DAY);
        assert!(d.tv_distance(0, DAY) < 1e-12);
    }

    #[test]
    fn reversal_maximizes_change_for_skewed_start() {
        let d = TopicDrift::reversal(&[0.9, 0.05, 0.05], DAY);
        assert!(d.tv_distance(0, DAY) > 0.8);
    }

    #[test]
    fn sampling_follows_weights() {
        let d = TopicDrift::new(vec![0.9, 0.1], vec![0.1, 0.9], DAY);
        let mut rng = SimRng::new(1);
        let early = (0..10_000).filter(|_| d.sample_topic(0, &mut rng) == 0).count();
        let late = (0..10_000).filter(|_| d.sample_topic(DAY, &mut rng) == 0).count();
        assert!(early > 8_500, "early={early}");
        assert!(late < 1_500, "late={late}");
    }

    #[test]
    fn tv_distance_monotone_along_linear_drift() {
        let d = TopicDrift::new(vec![1.0, 0.0], vec![0.0, 1.0], DAY);
        let d1 = d.tv_distance(0, DAY / 4);
        let d2 = d.tv_distance(0, DAY / 2);
        let d3 = d.tv_distance(0, DAY);
        assert!(d1 < d2 && d2 < d3);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_rejected() {
        TopicDrift::new(vec![1.0], vec![0.5, 0.5], DAY);
    }
}
