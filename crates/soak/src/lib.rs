//! # dwr-soak — the full-system soak scenario
//!
//! Every chaos suite in the workspace exercises exactly one tier at a
//! time: replica churn (`chaos.rs`), site failover (`site_chaos.rs`),
//! crawler churn (`crawl_chaos.rs`), live splits (`repart_chaos.rs`),
//! routed serving (`route_chaos.rs`), straggler tails (`tail_chaos.rs`).
//! The paper's central claim, though, is that a distributed Web
//! retrieval system must survive these challenges *concurrently* — a
//! shard split racing an index refresh racing a site outage is exactly
//! where single-component guarantees break down.
//!
//! [`SoakScenario`] wires the existing pieces into one deterministic,
//! long-horizon simulation:
//!
//! 1. **Crawl tier** — a churning [`DistributedCrawl`] (agents flap on
//!    an [`AgentSchedule`], hosts move by consistent hashing, frontiers
//!    hand off politely) fetches a synthetic web, with the full
//!    [`FetchSpan`] trace retained.
//! 2. **Index tier** — the fetch trace feeds periodic epoch-stamped
//!    *refreshes*: every `refresh_interval` the pages fetched since the
//!    last refresh become visible, so each document's freshness lag is
//!    provably bounded by the interval. The published corpus becomes a
//!    live [`RepartIndex`] that a [`SplitSchedule`] keeps reshaping
//!    (with crash fates) under traffic.
//! 3. **Serve tier** — a [`MultiSiteEngine`] (site outage traces, WAN
//!    failover, shard routing, hedging, stragglers, gather deadlines)
//!    serves a diurnal [`generate_arrivals`] stream, with one shared
//!    [`ObsRecorder`] (built from [`ObsConfig::full_system`])
//!    instrumenting every tier into a single registry.
//!
//! The run returns a [`SoakReport`] carrying the full crawl trace, the
//! refresh ledger, every query outcome, periodic window snapshots, and
//! the final instrument snapshot. [`SoakInvariants::check`] then
//! asserts the end state **from the trace**: zero politeness violations
//! across handoffs, no `Failed` query while at least one site was live,
//! every query in exactly one outcome bucket, freshness lag bounded by
//! the refresh interval, exactly-once epoch coverage of the partition
//! map, and the live `crawl.*` / `repart.*` / `route.*` / `site.*`
//! instruments equal to the offline stats bitwise.

use dwr_avail::failure::UpDownProcess;
use dwr_avail::site::{Site, SiteConfig};
use dwr_crawler::assign::ConsistentHashAssigner;
use dwr_crawler::faults::AgentSchedule;
use dwr_crawler::sim::{CrawlConfig, CrawlFaultStats, DistributedCrawl, FetchSpan, SpanOutcome};
use dwr_obs::{ObsConfig, ObsRecorder, Snapshot};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::{corpus_from_web, Corpus};
use dwr_partition::repart::{RepartIndex, RepartStats, SplitSchedule};
use dwr_query::broker::{DocBroker, GlobalHit};
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, EngineStats, HedgePolicy, Served};
use dwr_query::faults::{site_outage_traces, FaultSchedule};
use dwr_query::incremental::{self, IncrementalProfile, PartitionArrival};
use dwr_query::multisite::{MultiSiteConfig, MultiSiteEngine, MultiSiteStats, SiteEngineSpec};
use dwr_query::route::{RouterStats, ShardRouter};
use dwr_query::straggler::{StragglerModel, TailParams};
use dwr_querylog::arrival::{generate_arrivals, DiurnalProfile};
use dwr_querylog::model::QueryModel;
use dwr_sim::net::Topology;
use dwr_sim::{SimRng, SimTime, HOUR, MINUTE, SECOND};
use dwr_text::TermId;
use dwr_webgraph::content::ContentModel;
use dwr_webgraph::generate::{generate_web, WebConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything that shapes one soak run. All churn mechanisms are
/// individually gateable so the same scenario doubles as its own
/// churn-free baseline ([`SoakConfig::calm`]).
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed; every stream below label-forks from it.
    pub seed: u64,

    // --- Web + crawl tier. ---
    /// Synthetic web size.
    pub pages: usize,
    /// Hosts the pages spread over.
    pub hosts: usize,
    /// Crawling agents.
    pub agents: u32,
    /// Per-host politeness delay (the invariant the trace must prove).
    pub politeness_delay: SimTime,
    /// Flap agents on an up/down process calibrated to the baseline
    /// crawl's makespan; off = the churn-free crawl arm.
    pub crawl_churn: bool,

    // --- Index tier. ---
    /// Refresh cadence: pages fetched in `(n-1)·I, n·I]` become visible
    /// at `n·I`, so freshness lag is bounded by `I` by construction.
    pub refresh_interval: SimTime,
    /// Initial shard count of the live index.
    pub partitions: usize,
    /// Replicas per shard at every site.
    pub replicas: usize,
    /// Scheduled online splits over the serving horizon (0 = static).
    pub splits: usize,
    /// Fraction of scheduled splits drawn as crash fates.
    pub split_crash_rate: f64,

    // --- Serve tier. ---
    /// Serving sites on a geo ring.
    pub sites: usize,
    /// Draw whole-site outage traces; off = always-up sites.
    pub site_outages: bool,
    /// Flap individual replicas on per-(partition, replica, site)
    /// outage schedules.
    pub replica_churn: bool,
    /// Selective-search width (`None` = exhaustive fan-out).
    pub route_width: Option<usize>,
    /// Tail-tolerance policy of every site engine.
    pub hedge: HedgePolicy,
    /// Inflate per-(partition, replica, query) service times with
    /// heavy-tailed straggler draws.
    pub stragglers: bool,
    /// Deadline-aware gather (`Served::Partial` past it).
    pub gather_deadline: Option<SimTime>,
    /// Result-cache entries per site.
    pub cache: usize,
    /// Scatter threads per site engine (1 = sequential scatter; the
    /// soak is pinned bit-identical across this knob).
    pub parallelism: usize,

    // --- Workload. ---
    /// Serving horizon (splits, outages, and arrivals all live in it).
    pub serve_horizon: SimTime,
    /// Mean per-region arrival rate, queries/second.
    pub mean_qps: f64,
    /// Diurnal amplitude in `[0, 1)`.
    pub amplitude: f64,
    /// Distinct queries in the query model.
    pub query_universe: usize,
    /// Results per query.
    pub k: usize,
    /// Interval-report window width.
    pub window: SimTime,
}

impl SoakConfig {
    /// The full storm: every churn mechanism on, at a scale a debug
    /// test run can afford.
    pub fn storm(seed: u64) -> Self {
        SoakConfig {
            seed,
            pages: 600,
            hosts: 40,
            agents: 4,
            politeness_delay: SECOND / 2,
            crawl_churn: true,
            refresh_interval: 2 * MINUTE,
            partitions: 4,
            replicas: 2,
            splits: 4,
            split_crash_rate: 0.25,
            sites: 3,
            site_outages: true,
            replica_churn: true,
            route_width: Some(2),
            hedge: HedgePolicy::OnDeath,
            stragglers: true,
            gather_deadline: Some(SECOND),
            cache: 8,
            parallelism: 1,
            serve_horizon: 12 * HOUR,
            mean_qps: 0.02,
            amplitude: 0.8,
            query_universe: 400,
            k: 10,
            window: 2 * HOUR,
        }
    }

    /// The churn-free baseline arm: the same crawl, index, workload,
    /// and tail machinery, but no agent flapping, no splits, no site
    /// outages, and no replica churn — the denominator of the soak's
    /// headline number.
    pub fn calm(seed: u64) -> Self {
        SoakConfig {
            crawl_churn: false,
            splits: 0,
            site_outages: false,
            replica_churn: false,
            ..SoakConfig::storm(seed)
        }
    }

    /// A smaller storm for proptests and smoke runs.
    pub fn smoke(seed: u64) -> Self {
        SoakConfig {
            pages: 300,
            hosts: 20,
            agents: 3,
            splits: 3,
            sites: 2,
            serve_horizon: 6 * HOUR,
            mean_qps: 0.01,
            query_universe: 200,
            window: HOUR,
            ..SoakConfig::storm(seed)
        }
    }

    /// Shard slots the live index provisions (pippin splits are binary,
    /// so `splits` committed splits need `2·splits` extra slots).
    pub fn capacity(&self) -> usize {
        self.partitions + 2 * self.splits
    }
}

/// One epoch-stamped index refresh derived from the fetch trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexRefresh {
    /// Publication instant (a multiple of the refresh interval).
    pub at: SimTime,
    /// Documents becoming visible at this refresh.
    pub docs_published: u64,
    /// Worst fetch-to-publication lag inside this refresh.
    pub max_lag: SimTime,
}

/// One served query in the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Arrival instant.
    pub at: SimTime,
    /// Originating region.
    pub region: u16,
    /// Sites whose outage trace said "up" at dispatch.
    pub live_sites: u32,
    /// Outcome bucket.
    pub served: Served,
    /// Site that answered, if any.
    pub site: Option<u32>,
    /// WAN hops taken.
    pub wan_hops: u32,
    /// End-to-end latency, if answered.
    pub latency: Option<SimTime>,
    /// FNV over `(doc, score)` of the returned hits — pins the results
    /// bit-for-bit without retaining them.
    pub hits_digest: u64,
}

/// One interval-report window: the cumulative instrument snapshot at
/// the window's end (per-window activity = `snapshot.delta(&prev)`).
#[derive(Debug, Clone, PartialEq)]
pub struct SoakWindow {
    /// Window start (serving time).
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// Queries that arrived inside the window.
    pub queries: u64,
    /// Cumulative snapshot taken at `end`.
    pub snapshot: Snapshot,
}

/// Per-bucket outcome totals of a query trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Full-fidelity answers straight from a cache.
    pub cache_hit: u64,
    /// Exhaustive full-coverage answers.
    pub full: u64,
    /// Deliberate selective-search answers.
    pub routed: u64,
    /// Partition(s) lost to faults.
    pub degraded: u64,
    /// Stale cache service during an outage.
    pub stale: u64,
    /// Deadline-cut gathers.
    pub partial: u64,
    /// Explicit sheds at the site tier.
    pub shed: u64,
    /// No site live at dispatch.
    pub failed: u64,
}

impl OutcomeCounts {
    /// Total queries across every bucket.
    pub fn total(&self) -> u64 {
        self.cache_hit
            + self.full
            + self.routed
            + self.degraded
            + self.stale
            + self.partial
            + self.shed
            + self.failed
    }

    /// Full-fidelity service: `Full`, `Routed` (deliberate,
    /// recall-audited selection), and cache hits of such answers.
    pub fn full_fidelity(&self) -> u64 {
        self.cache_hit + self.full + self.routed
    }
}

/// Everything a soak run leaves behind — the material the invariant
/// checker, the chaos anchors, and the E31 experiment all read.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Coverage of the churn-free calibration crawl.
    pub baseline_coverage: f64,
    /// Makespan of the calibration crawl (sets the churn process).
    pub baseline_makespan: SimTime,
    /// Coverage of the (possibly churned) crawl that fed the index.
    pub crawl_coverage: f64,
    /// Makespan of that crawl.
    pub crawl_makespan: SimTime,
    /// Its fault accounting.
    pub crawl_faults: CrawlFaultStats,
    /// Its full fetch-span trace (politeness is proven from this).
    pub crawl_trace: Vec<FetchSpan>,
    /// The politeness delay the trace must respect.
    pub politeness_delay: SimTime,
    /// Documents the crawl delivered into the index.
    pub fetched_docs: u64,
    /// The epoch-stamped refresh ledger.
    pub refreshes: Vec<IndexRefresh>,
    /// The freshness bound every refresh must respect.
    pub refresh_interval: SimTime,
    /// Probe-query completeness as refreshes land (the incremental
    /// model's view of index freshness).
    pub freshness: IncrementalProfile,
    /// Every served query, in arrival order.
    pub queries: Vec<QueryRecord>,
    /// Interval-report windows over the serving horizon.
    pub windows: Vec<SoakWindow>,
    /// Final cumulative snapshot of the shared registry.
    pub final_snapshot: Snapshot,
    /// Site-tier counters.
    pub site_stats: MultiSiteStats,
    /// Per-site engine counters.
    pub engine_stats: Vec<EngineStats>,
    /// Router counters (when routing was on).
    pub router_stats: Option<RouterStats>,
    /// Online-repartition counters.
    pub repart_stats: RepartStats,
    /// Whether the partition map validated bottom-up at the end.
    pub map_validates: bool,
}

impl SoakReport {
    /// Bucket totals of the query trace.
    pub fn outcomes(&self) -> OutcomeCounts {
        let mut c = OutcomeCounts::default();
        for q in &self.queries {
            match q.served {
                Served::CacheHit => c.cache_hit += 1,
                Served::Full => c.full += 1,
                Served::Routed { .. } => c.routed += 1,
                Served::Degraded { .. } => c.degraded += 1,
                Served::StaleFromCache => c.stale += 1,
                Served::Partial { .. } => c.partial += 1,
                Served::Shed => c.shed += 1,
                Served::Failed => c.failed += 1,
            }
        }
        c
    }

    /// The headline number: fraction of queries served at full fidelity
    /// (`Full` / `Routed` / cache hits) through whatever the run threw
    /// at the stack.
    pub fn full_fidelity_fraction(&self) -> f64 {
        let c = self.outcomes();
        if c.total() == 0 {
            return 1.0;
        }
        c.full_fidelity() as f64 / c.total() as f64
    }

    /// Worst fetch-to-publication lag across every refresh.
    pub fn max_freshness_lag(&self) -> SimTime {
        self.refreshes.iter().map(|r| r.max_lag).max().unwrap_or(0)
    }
}

/// The wired scenario. Construction is cheap; [`SoakScenario::run`]
/// does all the work and can be called repeatedly (every run with the
/// same config is bit-for-bit identical).
#[derive(Debug, Clone)]
pub struct SoakScenario {
    cfg: SoakConfig,
}

/// FNV-1a over the hits' `(doc, score)` pairs.
fn hits_digest(hits: &[GlobalHit]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for hit in hits {
        for word in [u64::from(hit.doc), u64::from(hit.score.to_bits())] {
            h ^= word;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

impl SoakScenario {
    /// Wrap a config.
    pub fn new(cfg: SoakConfig) -> Self {
        assert!(cfg.sites > 0 && cfg.partitions > 0 && cfg.replicas > 0 && cfg.agents > 0);
        assert!(cfg.refresh_interval > 0 && cfg.window > 0 && cfg.serve_horizon > 0);
        assert!(cfg.k > 0 && cfg.parallelism > 0);
        SoakScenario { cfg }
    }

    /// The config this scenario runs.
    pub fn config(&self) -> &SoakConfig {
        &self.cfg
    }

    /// Run the whole soak: crawl, refresh ledger, serve, end state.
    pub fn run(&self) -> SoakReport {
        let cfg = &self.cfg;
        let capacity = cfg.capacity();

        // --- Phase 1: the web and the crawl tier. ---
        let mut web_cfg = WebConfig::tiny();
        web_cfg.num_pages = cfg.pages;
        web_cfg.num_hosts = cfg.hosts;
        let web = generate_web(&web_cfg, cfg.seed);
        let content = ContentModel::small(web_cfg.num_topics);

        let base_cfg = CrawlConfig {
            agents: cfg.agents,
            connections_per_agent: 8,
            politeness_delay: cfg.politeness_delay,
            most_cited_seed: 50,
            record_trace: true,
            ..CrawlConfig::default()
        };
        // Churn-free calibration crawl: sets the scale of the agent
        // up/down process and the crawl-tier baseline numbers.
        let baseline = DistributedCrawl::new(
            &web,
            ConsistentHashAssigner::new(cfg.agents, 64),
            base_cfg.clone(),
            cfg.seed,
        )
        .run();

        // One registry for every tier: the crawl, every site engine,
        // the split publisher, and the router all record here.
        let recorder = Arc::new(ObsRecorder::new(ObsConfig::full_system(capacity, cfg.sites)));

        let mut churn_cfg = base_cfg;
        if cfg.crawl_churn {
            let up = (baseline.makespan / 3).max(1);
            let down = (baseline.makespan / 10).max(1);
            let process = UpDownProcess::exponential(up, down);
            churn_cfg.faults = Some(AgentSchedule::generate(
                cfg.agents as usize,
                &process,
                (4 * baseline.makespan).max(1),
                cfg.seed ^ 0x50A7_C4A4,
            ));
        }
        let crawl = DistributedCrawl::new(
            &web,
            ConsistentHashAssigner::new(cfg.agents, 64),
            churn_cfg,
            cfg.seed,
        )
        .with_obs(Arc::clone(&recorder))
        .run();

        // --- Phase 2: epoch-stamped refreshes from the fetch trace. ---
        // First successful fetch instant per page; duplicates from
        // crash-recovery refetches keep the earliest.
        let mut first_fetch: BTreeMap<u32, SimTime> = BTreeMap::new();
        for span in &crawl.trace {
            if span.outcome == SpanOutcome::Fetched {
                let e = first_fetch.entry(span.page.0).or_insert(span.end);
                *e = (*e).min(span.end);
            }
        }
        let docs: Vec<(u32, SimTime)> = first_fetch.into_iter().collect();
        assert!(!docs.is_empty(), "the crawl fetched nothing");

        let full_corpus = corpus_from_web(&web, &content, cfg.seed);
        let corpus: Corpus =
            docs.iter().map(|&(page, _)| full_corpus[page as usize].clone()).collect();

        // A page fetched at t publishes at the *next* refresh boundary,
        // so every lag is in (0, interval] — the bound the invariant
        // checker asserts.
        let interval = cfg.refresh_interval;
        let publish_at = |t: SimTime| (t / interval + 1) * interval;
        let last_refresh = docs.iter().map(|&(_, end)| publish_at(end)).max().unwrap();
        let mut refreshes: Vec<IndexRefresh> = (1..=last_refresh / interval)
            .map(|i| IndexRefresh { at: i * interval, docs_published: 0, max_lag: 0 })
            .collect();
        for &(_, end) in &docs {
            let at = publish_at(end);
            let r = &mut refreshes[(at / interval - 1) as usize];
            r.docs_published += 1;
            r.max_lag = r.max_lag.max(at - end);
        }

        // --- Phase 3: the live index and the serving stack. ---
        let assignment = RandomPartitioner { seed: cfg.seed }.assign(&corpus, cfg.partitions);
        let repart = Arc::new(RepartIndex::build(corpus, &assignment, cfg.partitions, capacity));

        // Freshness through the incremental model: each refresh batch
        // is one "arrival" of the probe query's hits, so the profile is
        // the fraction of the eventual top-k already indexed over time.
        let qmodel =
            QueryModel::generate(&content, cfg.query_universe, 0.8, 0.9, cfg.seed ^ 0xF00D);
        let probe: Vec<TermId> = qmodel
            .query(dwr_querylog::model::QueryId(0))
            .terms
            .iter()
            .map(|t| TermId(t.0))
            .collect();
        let oracle =
            DocBroker::single_site(&repart.snapshot()).with_global_stats(repart.corpus_stats());
        let mut by_refresh: BTreeMap<SimTime, Vec<GlobalHit>> = BTreeMap::new();
        for hit in oracle.query(&probe, docs.len()).hits {
            by_refresh.entry(publish_at(docs[hit.doc as usize].1)).or_default().push(hit);
        }
        let probe_arrivals: Vec<PartitionArrival> =
            by_refresh.into_iter().map(|(at, hits)| PartitionArrival { at, hits }).collect();
        let freshness = incremental::profile(&probe_arrivals, cfg.k, 6);

        let split_schedule = (cfg.splits > 0).then(|| {
            Arc::new(SplitSchedule::generate_with_crashes(
                cfg.splits,
                cfg.serve_horizon,
                cfg.seed ^ 0x5911_50A7,
                cfg.split_crash_rate,
            ))
        });
        let router = cfg.route_width.map(|w| Arc::new(ShardRouter::cori(w)));
        let stragglers = cfg
            .stragglers
            .then(|| Arc::new(StragglerModel::drawn(cfg.seed ^ 0x7A11_50A7, TailParams::mild())));
        let outage_traces: Vec<Site> = if cfg.site_outages {
            // birn_like outages come about once a month — invisible in a
            // half-day soak. `scaled` accelerates the event rate while
            // preserving steady-state availability, so a 12 h horizon
            // sees month-of-operation outage counts.
            let mut site_cfg = SiteConfig::birn_like(2);
            site_cfg.network = site_cfg.network.scaled(1.0 / 48.0);
            site_cfg.server = site_cfg.server.scaled(1.0 / 48.0);
            site_outage_traces(cfg.sites, &site_cfg, cfg.serve_horizon, cfg.seed ^ 0x517E_50A7)
        } else {
            (0..cfg.sites).map(|_| Site::always_up(cfg.serve_horizon)).collect()
        };

        let sites: Vec<SiteEngineSpec<LruCache, Arc<ObsRecorder>>> = outage_traces
            .into_iter()
            .enumerate()
            .map(|(s, outages)| {
                let mut engine =
                    DistributedEngine::new_live(&repart, LruCache::new(cfg.cache), cfg.replicas)
                        .with_obs(Arc::clone(&recorder))
                        .with_hedge_policy(cfg.hedge);
                if cfg.parallelism > 1 {
                    engine = engine.with_parallelism(cfg.parallelism);
                }
                if s == 0 {
                    // Exactly one engine owns the split schedule, so
                    // each split publishes exactly once; the published
                    // map is shared by every site instantly (one Arc).
                    if let Some(sched) = &split_schedule {
                        engine = engine.with_splits(Arc::clone(sched));
                    }
                }
                if let Some(r) = &router {
                    engine = engine.with_router(Arc::clone(r));
                }
                if let Some(st) = &stragglers {
                    engine = engine.with_stragglers(Arc::clone(st));
                }
                if let Some(d) = cfg.gather_deadline {
                    engine = engine.with_gather_deadline(d);
                }
                if cfg.replica_churn {
                    // Per-site replica hardware fails independently.
                    let process = UpDownProcess::exponential(6 * HOUR, 20 * MINUTE);
                    engine = engine.with_faults(Arc::new(FaultSchedule::generate(
                        capacity,
                        cfg.replicas,
                        &process,
                        cfg.serve_horizon,
                        cfg.seed ^ 0xFA17_0000 ^ ((s as u64) << 32),
                    )));
                }
                SiteEngineSpec { region: s as u16, capacity_qps: 100.0, engine, outages }
            })
            .collect();
        let engine =
            MultiSiteEngine::new(sites, Topology::geo_ring(cfg.sites), MultiSiteConfig::default());

        // --- Phase 4: the diurnal query storm. ---
        let profiles: Vec<DiurnalProfile> = (0..cfg.sites)
            .map(|s| DiurnalProfile {
                mean_qps: cfg.mean_qps,
                amplitude: cfg.amplitude,
                phase: s as f64 / cfg.sites as f64,
            })
            .collect();
        let arrivals = generate_arrivals(&profiles, cfg.serve_horizon, cfg.seed ^ 0xA221_50A7);
        let mut qrng = SimRng::new(cfg.seed ^ 0x9E81_50A7);
        let mut queries = Vec::with_capacity(arrivals.len());
        let mut windows = Vec::new();
        let (mut win_start, mut win_end, mut win_queries) = (0, cfg.window, 0u64);
        for a in &arrivals {
            while a.time >= win_end {
                windows.push(SoakWindow {
                    start: win_start,
                    end: win_end,
                    queries: win_queries,
                    snapshot: recorder.snapshot(),
                });
                win_start = win_end;
                win_end += cfg.window;
                win_queries = 0;
            }
            engine.advance_to(a.time);
            let q = qmodel.sample(&mut qrng);
            let terms: Vec<TermId> = qmodel.query(q).terms.iter().map(|t| TermId(t.0)).collect();
            let live_sites = engine.live_sites(a.time).len() as u32;
            let r = engine.query(a.region, &terms, cfg.k);
            win_queries += 1;
            queries.push(QueryRecord {
                at: a.time,
                region: a.region,
                live_sites,
                served: r.served,
                site: r.site.map(|s| s as u32),
                wan_hops: r.wan_hops,
                latency: r.latency,
                hits_digest: hits_digest(&r.hits),
            });
        }
        // Fire anything still scheduled, then close the tail window at
        // the horizon (quiet trailing windows collapse into it).
        engine.advance_to(cfg.serve_horizon);
        windows.push(SoakWindow {
            start: win_start,
            end: cfg.serve_horizon,
            queries: win_queries,
            snapshot: recorder.snapshot(),
        });

        // --- Phase 5: end state. ---
        SoakReport {
            baseline_coverage: baseline.coverage,
            baseline_makespan: baseline.makespan,
            crawl_coverage: crawl.coverage,
            crawl_makespan: crawl.makespan,
            crawl_faults: crawl.faults,
            crawl_trace: crawl.trace,
            politeness_delay: cfg.politeness_delay,
            fetched_docs: docs.len() as u64,
            refreshes,
            refresh_interval: interval,
            freshness,
            queries,
            windows,
            final_snapshot: recorder.snapshot(),
            site_stats: engine.stats(),
            engine_stats: (0..cfg.sites).map(|s| engine.site_engine(s).stats()).collect(),
            router_stats: router.map(|r| r.stats()),
            repart_stats: repart.repart_stats(),
            map_validates: repart.validate().is_ok(),
        }
    }
}

/// The end-state invariant checker: everything is computed from the
/// report's traces and cross-checked against the live instruments, so a
/// regression anywhere in the stack surfaces as a named violation.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakInvariants {
    /// Per-host politeness violations found in the fetch trace
    /// (overlapping spans or gaps under the politeness delay — across
    /// agents, so frontier handoffs are covered).
    pub politeness_violations: u64,
    /// Queries that came back `Failed` while ≥ 1 site was live.
    pub failed_while_live: u64,
    /// `total arrivals − sum of outcome buckets` (must be 0: every
    /// query lands in exactly one bucket).
    pub outcome_gap: i64,
    /// Worst fetch-to-publication lag observed.
    pub freshness_max_lag: SimTime,
    /// The bound it must respect (the refresh interval).
    pub freshness_bound: SimTime,
    /// Partition map validated bottom-up, every committed split created
    /// exactly two children, and the live epoch counts the commits —
    /// exactly-once coverage at every epoch.
    pub coverage_exactly_once: bool,
    /// Live-instrument-vs-offline-stats mismatches, by name.
    pub mismatches: Vec<String>,
}

impl SoakInvariants {
    /// Check every invariant over a finished run.
    pub fn check(report: &SoakReport) -> Self {
        // Politeness from the trace: per host, sorted by start, no two
        // consecutive spans closer than the politeness delay.
        let mut per_host: BTreeMap<u32, Vec<(SimTime, SimTime)>> = BTreeMap::new();
        for s in &report.crawl_trace {
            per_host.entry(s.host.0).or_default().push((s.start, s.end));
        }
        let politeness_violations = per_host
            .values_mut()
            .map(|spans| {
                spans.sort_unstable();
                spans.windows(2).filter(|w| w[1].0 < w[0].1 + report.politeness_delay).count()
                    as u64
            })
            .sum();

        let failed_while_live = report
            .queries
            .iter()
            .filter(|q| q.served == Served::Failed && q.live_sites > 0)
            .count() as u64;

        let c = report.outcomes();
        let mut outcome_gap = report.queries.len() as i64 - c.total() as i64;
        // The site tier's own buckets must tell the same story as the
        // per-query trace.
        let s = &report.site_stats;
        let answered = c.total() - c.shed - c.failed;
        if s.served_local + s.served_remote != answered
            || s.failed != c.failed
            || s.shed_overload + s.shed_deadline != c.shed
            || s.routed != c.routed
            || s.degraded != c.degraded + c.stale + c.partial
        {
            outcome_gap += 1; // surfaced as a nonzero gap with the counts in `violations`
        }

        let freshness_max_lag = report.max_freshness_lag();
        let published: u64 = report.refreshes.iter().map(|r| r.docs_published).sum();

        let r = &report.repart_stats;
        let coverage_exactly_once = report.map_validates
            && published == report.fetched_docs
            && r.children_created == 2 * r.splits_committed
            && r.epoch == r.splits_committed;

        // Live instruments vs offline stats, bitwise.
        let mut mismatches = Vec::new();
        let snap = &report.final_snapshot;
        let mut check = |name: &str, offline: u64| {
            if snap.counter(name) != Some(offline) {
                mismatches
                    .push(format!("{name}: live {:?} != offline {offline}", snap.counter(name)));
            }
        };
        let f = &report.crawl_faults;
        check("crawl.crashes", f.crashes);
        check("crawl.recoveries", f.recoveries);
        check("crawl.lost_inflight", f.lost_inflight);
        check("crawl.hosts_moved", f.hosts_moved);
        check("crawl.handoff_batches", f.handoff_batches);
        check("crawl.handoff_urls", f.handoff_urls);
        check("crawl.refetches", f.refetches);
        check("repart.splits", r.splits_committed);
        check("repart.aborts", r.splits_aborted);
        check("repart.children", r.children_created);
        if let Some(rs) = &report.router_stats {
            check("route.queries", rs.queries);
            check("route.shards_contacted", rs.shards_contacted);
            check("route.broadenings", rs.broadenings);
            check("route.covered", rs.covered);
            check("route.profiles", rs.profiles_built);
            check("route.retrains", rs.retrains);
        }
        check("site.served_local", s.served_local);
        check("site.served_remote", s.served_remote);
        check("site.degraded", s.degraded);
        check("site.shed_overload", s.shed_overload);
        check("site.shed_deadline", s.shed_deadline);
        check("site.failed", s.failed);
        check("site.failovers", s.failovers);
        check("site.wan_hops", s.wan_hops);
        check("site.added_latency_us", s.added_latency_us);
        if snap.gauge("repart.epoch") != Some(r.epoch as f64) {
            mismatches.push(format!(
                "repart.epoch: live {:?} != offline {}",
                snap.gauge("repart.epoch"),
                r.epoch
            ));
        }

        SoakInvariants {
            politeness_violations,
            failed_while_live,
            outcome_gap,
            freshness_max_lag,
            freshness_bound: report.refresh_interval,
            coverage_exactly_once,
            mismatches,
        }
    }

    /// Human-readable list of everything that is wrong (empty = clean).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.politeness_violations > 0 {
            v.push(format!(
                "{} politeness violations in the fetch trace",
                self.politeness_violations
            ));
        }
        if self.failed_while_live > 0 {
            v.push(format!("{} queries Failed while >=1 site was live", self.failed_while_live));
        }
        if self.outcome_gap != 0 {
            v.push(format!(
                "outcome buckets do not account for every query (gap {})",
                self.outcome_gap
            ));
        }
        if self.freshness_max_lag > self.freshness_bound {
            v.push(format!(
                "freshness lag {} exceeds the refresh interval {}",
                self.freshness_max_lag, self.freshness_bound
            ));
        }
        if !self.coverage_exactly_once {
            v.push("partition map lost exactly-once epoch coverage".to_string());
        }
        v.extend(self.mismatches.iter().map(|m| format!("instrument mismatch: {m}")));
        v
    }

    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations().is_empty()
    }

    /// Panic with the full violation list unless clean.
    pub fn assert_clean(&self) {
        let v = self.violations();
        assert!(v.is_empty(), "soak invariants violated:\n  {}", v.join("\n  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakConfig {
        SoakConfig {
            pages: 150,
            hosts: 12,
            agents: 2,
            splits: 2,
            sites: 2,
            serve_horizon: 2 * HOUR,
            mean_qps: 0.01,
            query_universe: 100,
            window: HOUR,
            ..SoakConfig::storm(7)
        }
    }

    #[test]
    fn a_full_storm_runs_clean_end_to_end() {
        let report = SoakScenario::new(tiny()).run();
        let inv = SoakInvariants::check(&report);
        inv.assert_clean();
        assert!(!report.queries.is_empty());
        assert_eq!(report.outcomes().total(), report.queries.len() as u64);
        assert!(report.max_freshness_lag() <= report.refresh_interval);
        assert!(!report.windows.is_empty());
        assert_eq!(report.windows.last().unwrap().end, tiny().serve_horizon);
        // Window query counts partition the arrival stream.
        let windowed: u64 = report.windows.iter().map(|w| w.queries).sum();
        assert_eq!(windowed, report.queries.len() as u64);
    }

    #[test]
    fn tampered_reports_are_flagged() {
        let clean = SoakScenario::new(tiny()).run();
        assert!(SoakInvariants::check(&clean).is_clean());

        // A politeness breach planted in the trace is found.
        let mut r = clean.clone();
        let span = r.crawl_trace[0];
        let twin = FetchSpan { start: span.end, end: span.end + 1, ..span };
        r.crawl_trace.push(twin);
        let inv = SoakInvariants::check(&r);
        assert!(inv.politeness_violations > 0);
        assert!(!inv.is_clean());

        // A Failed query while sites were live is found.
        let mut r = clean.clone();
        let q = &mut r.queries[0];
        q.served = Served::Failed;
        q.live_sites = 1;
        assert!(SoakInvariants::check(&r).failed_while_live > 0);

        // A freshness-lag breach is found.
        let mut r = clean.clone();
        r.refreshes[0].max_lag = r.refresh_interval + 1;
        let inv = SoakInvariants::check(&r);
        assert!(inv.freshness_max_lag > inv.freshness_bound);
        assert!(!inv.is_clean());

        // A lost document (published != fetched) breaks exactly-once
        // coverage.
        let mut r = clean.clone();
        r.fetched_docs += 1;
        assert!(!SoakInvariants::check(&r).coverage_exactly_once);

        // An invalid partition map breaks it too.
        let mut r = clean.clone();
        r.map_validates = false;
        assert!(!SoakInvariants::check(&r).coverage_exactly_once);

        // Offline stats drifting from the live instruments are caught
        // bitwise.
        let mut r = clean.clone();
        r.crawl_faults.crashes += 1;
        let inv = SoakInvariants::check(&r);
        assert!(inv.mismatches.iter().any(|m| m.contains("crawl.crashes")));
        assert!(!inv.is_clean());

        // Site-tier counters disagreeing with the per-query trace show
        // up as an outcome gap.
        let mut r = clean.clone();
        r.site_stats.failed += 1;
        assert_ne!(SoakInvariants::check(&r).outcome_gap, 0);
    }

    #[test]
    fn calm_config_disables_every_churn_mechanism() {
        let calm = SoakConfig::calm(3);
        assert!(!calm.crawl_churn && !calm.site_outages && !calm.replica_churn);
        assert_eq!(calm.splits, 0);
        let report = SoakScenario::new(SoakConfig {
            pages: 150,
            hosts: 12,
            serve_horizon: 2 * HOUR,
            mean_qps: 0.01,
            ..calm
        })
        .run();
        SoakInvariants::check(&report).assert_clean();
        assert_eq!(report.repart_stats.epoch, 0);
        assert_eq!(report.crawl_faults.crashes, 0);
        assert_eq!(report.site_stats.failed, 0);
    }

    #[test]
    fn outcome_counts_add_up() {
        let c = OutcomeCounts {
            cache_hit: 1,
            full: 2,
            routed: 3,
            degraded: 4,
            stale: 5,
            partial: 6,
            shed: 7,
            failed: 8,
        };
        assert_eq!(c.total(), 36);
        assert_eq!(c.full_fidelity(), 6);
    }
}
