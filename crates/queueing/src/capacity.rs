//! The engine-level analytical model the conclusion calls for.
//!
//! "A valuable tool would be an analytical model of such a system that,
//! given parameters such as data volume and query throughput, can
//! characterize a particular system in terms of response time, index size,
//! hardware, network bandwidth, and maintenance cost."
//!
//! [`EngineModel`] composes the pieces built elsewhere in this crate: the
//! storage sizing of [`crate::cost`], per-partition service times that grow
//! with the per-machine data share, Erlang-C waiting at the query
//! processors, and a scatter-gather latency model (max of partition
//! responses + merge) for the document-partitioned architecture.

use crate::ggc::GgcModel;

/// Engine-wide input parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineModel {
    /// Pages in the collection.
    pub pages: f64,
    /// Index bytes per page.
    pub index_bytes_per_page: f64,
    /// Index bytes a machine serves from RAM.
    pub ram_per_machine: f64,
    /// Mean query arrival rate, per second.
    pub qps: f64,
    /// Peak-to-mean traffic ratio.
    pub peak_factor: f64,
    /// Base CPU time (seconds) to evaluate a query against 1 GB of index
    /// on one machine; service time scales linearly with the per-machine
    /// index share.
    pub seconds_per_gb: f64,
    /// Threads per query-processing machine.
    pub threads_per_machine: u32,
    /// One-way intra-cluster network latency, seconds.
    pub lan_latency: f64,
    /// Broker merge cost per contacted partition, seconds.
    pub merge_cost_per_partition: f64,
    /// Target utilization headroom (provision so peak ρ ≤ this).
    pub target_utilization: f64,
    /// Hardware dollars per machine.
    pub dollars_per_machine: f64,
    /// Annual per-machine operating cost (power, people), dollars.
    pub opex_per_machine_year: f64,
}

impl EngineModel {
    /// A laptop-checkable default roughly calibrated to the paper's 2007
    /// cluster exercise.
    pub fn default_2007() -> Self {
        EngineModel {
            pages: 20e9,
            index_bytes_per_page: 1_250.0, // 25 TB / 20 B pages
            ram_per_machine: 8e9,
            qps: 2_000.0,
            peak_factor: 5.0,
            seconds_per_gb: 0.004,
            threads_per_machine: 150,
            lan_latency: 0.000_5,
            merge_cost_per_partition: 0.000_02,
            target_utilization: 0.6,
            dollars_per_machine: 3_300.0,
            opex_per_machine_year: 1_000.0,
        }
    }

    /// Size and characterize the engine.
    ///
    /// Returns `None` when no feasible sizing exists (service time per
    /// query exceeds what the thread pool can sustain even at one replica
    /// per machine — cannot happen with positive parameters, but guards
    /// division edge cases).
    pub fn evaluate(&self) -> Option<EngineSizing> {
        assert!(self.pages > 0.0 && self.qps > 0.0);
        let index_bytes = self.pages * self.index_bytes_per_page;
        let partitions = (index_bytes / self.ram_per_machine).ceil().max(1.0);
        let share_gb = index_bytes / partitions / 1e9;
        let service = self.seconds_per_gb * share_gb;
        if service <= 0.0 || service.is_nan() {
            return None;
        }
        let peak_qps = self.qps * self.peak_factor;
        // Every partition sees every query (document partitioning, no
        // collection selection). Replicate clusters until utilization at
        // the peak stays under target.
        let per_machine_capacity =
            f64::from(self.threads_per_machine) / service * self.target_utilization;
        let replicas = (peak_qps / per_machine_capacity).ceil().max(1.0);
        let machines = partitions * replicas;

        // Latency: queue wait at one processor replica + service + two LAN
        // hops + broker merge over all partitions.
        let lambda_per_machine = peak_qps / replicas;
        let ggc = GgcModel::new(self.threads_per_machine, service, 1.0, 1.0);
        let wait = if ggc.is_stable(lambda_per_machine) {
            ggc.mean_wait(lambda_per_machine)
        } else {
            return None;
        };
        let response =
            wait + service + 2.0 * self.lan_latency + self.merge_cost_per_partition * partitions;

        // Network: each query ships ~2 KB of results from each partition.
        let bandwidth = peak_qps * partitions * 2_048.0;

        Some(EngineSizing {
            index_bytes,
            partitions: partitions as u64,
            replicas: replicas as u64,
            machines: machines as u64,
            mean_service: service,
            peak_response_time: response,
            network_bytes_per_sec: bandwidth,
            capex_dollars: machines * self.dollars_per_machine,
            opex_dollars_year: machines * self.opex_per_machine_year,
        })
    }
}

/// The characterization the conclusion asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSizing {
    /// Total index size, bytes.
    pub index_bytes: f64,
    /// Index partitions (machines per replica cluster).
    pub partitions: u64,
    /// Cluster replicas.
    pub replicas: u64,
    /// Total machines.
    pub machines: u64,
    /// Mean per-partition service time, seconds.
    pub mean_service: f64,
    /// Estimated mean response time at peak load, seconds.
    pub peak_response_time: f64,
    /// Intra-cluster result traffic at peak, bytes/second.
    pub network_bytes_per_sec: f64,
    /// Hardware cost, dollars.
    pub capex_dollars: f64,
    /// Yearly operating cost, dollars.
    pub opex_dollars_year: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_is_feasible_and_sane() {
        let s = EngineModel::default_2007().evaluate().expect("feasible");
        assert!(s.partitions >= 3_000, "partitions={}", s.partitions);
        assert!(s.replicas >= 1);
        assert!(s.machines >= s.partitions);
        assert!(s.peak_response_time > 0.0 && s.peak_response_time < 1.0);
        assert!(s.capex_dollars > 1e6);
    }

    #[test]
    fn more_data_more_machines() {
        let base = EngineModel::default_2007();
        let bigger = EngineModel { pages: base.pages * 4.0, ..base };
        let s0 = base.evaluate().unwrap();
        let s1 = bigger.evaluate().unwrap();
        assert!(s1.partitions >= s0.partitions * 3);
        assert!(s1.machines > s0.machines);
    }

    #[test]
    fn more_traffic_more_replicas() {
        let base = EngineModel::default_2007();
        let busier = EngineModel { qps: base.qps * 10.0, ..base };
        let s0 = base.evaluate().unwrap();
        let s1 = busier.evaluate().unwrap();
        assert!(s1.replicas > s0.replicas);
        // Partitions are traffic-independent.
        assert_eq!(s1.partitions, s0.partitions);
    }

    #[test]
    fn response_time_grows_with_per_machine_share() {
        let base = EngineModel::default_2007();
        let fat = EngineModel { ram_per_machine: base.ram_per_machine * 8.0, ..base };
        let s0 = base.evaluate().unwrap();
        let s1 = fat.evaluate().unwrap();
        assert!(s1.partitions < s0.partitions);
        assert!(s1.mean_service > s0.mean_service);
    }

    #[test]
    fn headroom_bounds_utilization() {
        let m = EngineModel::default_2007();
        let s = m.evaluate().unwrap();
        let lambda_per_machine = m.qps * m.peak_factor / s.replicas as f64;
        let rho = lambda_per_machine * s.mean_service / f64::from(m.threads_per_machine);
        assert!(rho <= m.target_utilization + 1e-9, "rho={rho}");
    }
}
