//! G/G/c bounds and approximations — the model behind Figure 6.
//!
//! The paper: "suppose we model a front-end server as a queueing system
//! G/G/c, where the c servers in the model correspond to the threads that
//! serve requests (...) Assuming that c = 150 (a typical value for the
//! maximum number of clients on Apache servers), Figure 6 shows an upper
//! bound on the capacity of the system for different average service rate
//! (for a given point (x, y), if x is the average service time, then the
//! capacity has to be less than y, otherwise the service queue grows to
//! infinity)."
//!
//! The upper bound is the stability condition `λ < c / E[S]`. We also
//! provide the Allen–Cunneen approximation for the waiting time of a
//! stable G/G/c queue so the engine model can estimate latency, not just
//! feasibility.

use crate::mmc::MMc;

/// A G/G/c model described by its first two moments.
#[derive(Debug, Clone, Copy)]
pub struct GgcModel {
    /// Number of servers (threads).
    pub c: u32,
    /// Mean service time `E[S]` (seconds).
    pub mean_service: f64,
    /// Squared coefficient of variation of inter-arrival times.
    pub ca2: f64,
    /// Squared coefficient of variation of service times.
    pub cs2: f64,
}

impl GgcModel {
    /// Create a model.
    pub fn new(c: u32, mean_service: f64, ca2: f64, cs2: f64) -> Self {
        assert!(c > 0 && mean_service > 0.0 && ca2 >= 0.0 && cs2 >= 0.0);
        GgcModel { c, mean_service, ca2, cs2 }
    }

    /// The paper's Figure 6 configuration: G/G/150 front-end threads.
    pub fn front_end_150(mean_service: f64) -> Self {
        // Web request streams and service times are both bursty; unit CVs
        // keep the approximation at the M/M/c baseline, matching the
        // figure's "upper bound" framing.
        Self::new(150, mean_service, 1.0, 1.0)
    }

    /// Maximum sustainable arrival rate (per second): `c / E[S]`.
    ///
    /// Any λ at or above this makes the queue grow without bound — this is
    /// the curve of Figure 6.
    pub fn max_capacity(&self) -> f64 {
        f64::from(self.c) / self.mean_service
    }

    /// Whether arrival rate `lambda` is sustainable.
    pub fn is_stable(&self, lambda: f64) -> bool {
        lambda < self.max_capacity()
    }

    /// Allen–Cunneen approximation of the mean waiting time at arrival
    /// rate `lambda`: `Wq ≈ Wq(M/M/c) × (ca² + cs²)/2`.
    pub fn mean_wait(&self, lambda: f64) -> f64 {
        assert!(self.is_stable(lambda), "unstable: lambda >= c/E[S]");
        let mmc = MMc::new(lambda, 1.0 / self.mean_service, self.c);
        mmc.mean_wait() * (self.ca2 + self.cs2) / 2.0
    }

    /// Approximate mean response time at `lambda`.
    pub fn mean_response_time(&self, lambda: f64) -> f64 {
        self.mean_wait(lambda) + self.mean_service
    }

    /// The Figure 6 curve: `(service time, max capacity)` pairs for service
    /// times between `lo` and `hi` seconds (inclusive), in `steps` points.
    pub fn capacity_curve(c: u32, lo: f64, hi: f64, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps >= 2 && lo > 0.0 && hi > lo);
        (0..steps)
            .map(|i| {
                let s = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
                (s, Self::new(c, s, 1.0, 1.0).max_capacity())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure6_endpoints() {
        // "it drops from 15 to 2 as the average service time of each
        // thread goes from 10ms to 100ms" — capacity in queries per
        // millisecond: 150/10 = 15 and 150/100 = 1.5 ≈ 2.
        let at_10ms = GgcModel::front_end_150(0.010).max_capacity();
        let at_100ms = GgcModel::front_end_150(0.100).max_capacity();
        assert!((at_10ms / 1000.0 - 15.0).abs() < 1e-9);
        assert!((at_100ms / 1000.0 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_decreases_with_service_time() {
        let curve = GgcModel::capacity_curve(150, 0.001, 0.1, 50);
        assert!(curve.windows(2).all(|w| w[0].1 > w[1].1));
        // Sharp drop: first point is 100× the last.
        assert!(curve[0].1 / curve.last().unwrap().1 > 50.0);
    }

    #[test]
    fn stability_boundary() {
        let m = GgcModel::front_end_150(0.010);
        assert!(m.is_stable(14_999.0));
        assert!(!m.is_stable(15_000.0));
        assert!(!m.is_stable(20_000.0));
    }

    #[test]
    fn wait_grows_toward_saturation() {
        let m = GgcModel::front_end_150(0.010);
        let w_low = m.mean_wait(5_000.0);
        let w_mid = m.mean_wait(12_000.0);
        let w_high = m.mean_wait(14_800.0);
        assert!(w_low < w_mid && w_mid < w_high);
        assert!(w_high > 10.0 * w_low);
    }

    #[test]
    fn higher_variability_more_waiting() {
        let smooth = GgcModel::new(10, 0.01, 0.5, 0.5);
        let bursty = GgcModel::new(10, 0.01, 2.0, 2.0);
        assert!(bursty.mean_wait(800.0) > smooth.mean_wait(800.0));
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn wait_at_saturation_panics() {
        GgcModel::front_end_150(0.010).mean_wait(15_000.0);
    }

    #[test]
    fn response_time_includes_service() {
        let m = GgcModel::front_end_150(0.02);
        let lambda = 1000.0;
        assert!(m.mean_response_time(lambda) >= m.mean_wait(lambda) + 0.02 - 1e-12);
    }
}
