//! The introduction's back-of-the-envelope sizing model (Experiment E1).
//!
//! "Suppose that we have 20 billion Web pages, which suggests at least 100
//! terabytes of text or an index of around 25 terabytes. (...) we need
//! approximately 3,000 of them in each cluster to hold the index. (...)
//! Suppose a cluster that can answer 1,000 queries per second (...) 173
//! million queries per day, which implies around 10,000 per second on peak
//! times. We then need to replicate the system at least 10 times (...) at
//! least 30,000 computers overall. Deploying such a system may cost over
//! 100 million US dollars."

/// Input parameters of the sizing exercise.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Number of Web pages to index.
    pub pages: f64,
    /// Average text bytes per page (the paper's 20B pages → 100 TB implies
    /// 5 KB/page).
    pub bytes_per_page: f64,
    /// Index size as a fraction of text size (25 TB / 100 TB = 0.25).
    pub index_ratio: f64,
    /// RAM available for index per machine, in bytes (the paper's
    /// "several gigabytes" works out to ~8.3 GB for 3,000 machines).
    pub ram_per_machine: f64,
    /// Queries a single cluster sustains, per second.
    pub cluster_qps: f64,
    /// Queries per day to serve.
    pub queries_per_day: f64,
    /// Peak-to-mean ratio of the daily traffic (173M/day ≈ 2,000/s mean;
    /// "around 10,000 per second on peak times" → 5×).
    pub peak_factor: f64,
    /// Hardware cost per machine, US dollars.
    pub dollars_per_machine: f64,
}

impl CostModel {
    /// The paper's 2007 numbers.
    pub fn paper_2007() -> Self {
        CostModel {
            pages: 20e9,
            bytes_per_page: 5_000.0,
            index_ratio: 0.25,
            ram_per_machine: 25e12 / 3_000.0, // calibrated to "about 3,000"
            cluster_qps: 1_000.0,
            queries_per_day: 173e6,
            peak_factor: 5.0,
            dollars_per_machine: 100e6 / 30_000.0, // "over $100M" for 30k
        }
    }

    /// The paper's conservative 2010 projection: clusters of 50,000 and at
    /// least 1.5 million computers. Reached by scaling pages and query
    /// volume while machines stay the same.
    pub fn paper_2010_projection() -> Self {
        CostModel {
            pages: 20e9 * (50_000.0 / 3_000.0), // ≈ 333 B pages
            queries_per_day: 173e6 * 3.0,       // conservative traffic growth
            ..Self::paper_2007()
        }
    }

    /// Evaluate the model.
    pub fn evaluate(&self) -> CostReport {
        let text_bytes = self.pages * self.bytes_per_page;
        let index_bytes = text_bytes * self.index_ratio;
        let machines_per_cluster = (index_bytes / self.ram_per_machine).ceil();
        let mean_qps = self.queries_per_day / 86_400.0;
        let peak_qps = mean_qps * self.peak_factor;
        let clusters = (peak_qps / self.cluster_qps).ceil();
        let total_machines = machines_per_cluster * clusters;
        CostReport {
            text_bytes,
            index_bytes,
            machines_per_cluster,
            peak_qps,
            clusters,
            total_machines,
            hardware_dollars: total_machines * self.dollars_per_machine,
        }
    }
}

/// Output of the sizing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Total crawled text volume, bytes.
    pub text_bytes: f64,
    /// Index size, bytes.
    pub index_bytes: f64,
    /// Machines needed to hold one index replica in RAM.
    pub machines_per_cluster: f64,
    /// Peak query load, per second.
    pub peak_qps: f64,
    /// Number of cluster replicas needed for the peak.
    pub clusters: f64,
    /// Total machine count.
    pub total_machines: f64,
    /// Hardware cost, US dollars.
    pub hardware_dollars: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_2007_numbers() {
        let r = CostModel::paper_2007().evaluate();
        // "at least 100 terabytes of text"
        assert!((r.text_bytes - 100e12).abs() / 100e12 < 0.01);
        // "an index of around 25 terabytes"
        assert!((r.index_bytes - 25e12).abs() / 25e12 < 0.01);
        // "approximately 3,000 of them in each cluster"
        assert!((r.machines_per_cluster - 3_000.0).abs() <= 1.0);
        // "around 10,000 per second on peak times"
        assert!((r.peak_qps - 10_000.0).abs() / 10_000.0 < 0.01);
        // "replicate the system at least 10 times"
        assert!((r.clusters - 11.0).abs() <= 1.0);
        // "at least 30,000 computers overall"
        assert!(r.total_machines >= 30_000.0 && r.total_machines <= 35_000.0);
        // "over 100 million US dollars"
        assert!(r.hardware_dollars >= 100e6);
    }

    #[test]
    fn projection_2010_reaches_paper_scale() {
        let r = CostModel::paper_2010_projection().evaluate();
        // "clusters of 50,000 computers and at least 1.5 million computers"
        assert!((r.machines_per_cluster - 50_000.0).abs() / 50_000.0 < 0.02);
        assert!(r.total_machines >= 1.4e6, "total={}", r.total_machines);
    }

    #[test]
    fn machines_scale_linearly_with_pages() {
        let base = CostModel::paper_2007();
        let double = CostModel { pages: base.pages * 2.0, ..base };
        let r1 = base.evaluate();
        let r2 = double.evaluate();
        assert!((r2.machines_per_cluster / r1.machines_per_cluster - 2.0).abs() < 0.01);
    }

    #[test]
    fn clusters_scale_with_traffic() {
        let base = CostModel::paper_2007();
        let busy = CostModel { queries_per_day: base.queries_per_day * 3.0, ..base };
        assert!(busy.evaluate().clusters >= base.evaluate().clusters * 2.0);
    }
}
