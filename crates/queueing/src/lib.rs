//! # dwr-queueing — analytic capacity models
//!
//! Two parts of the paper are directly analytic:
//!
//! * **Figure 6** models a front-end server as a `G/G/c` queue with
//!   `c = 150` threads and shows the maximum sustainable capacity dropping
//!   sharply with the average service time ("it drops from 15 to 2 as the
//!   average service time goes from 10ms to 100ms").
//! * The **introduction's cost model** sizes a 2007 search engine: 20
//!   billion pages → ~25 TB index → ~3,000 machines per cluster, 173M
//!   queries/day → ~10,000 qps peak → ≥10 replicas → ≥30,000 machines and
//!   "over 100 million US dollars".
//! * The **conclusion** asks for "an analytical model of such a system
//!   that, given parameters such as data volume and query throughput, can
//!   characterize a particular system in terms of response time, index
//!   size, hardware, network bandwidth, and maintenance cost" —
//!   [`capacity::EngineModel`] is that tool.
//!
//! [`mmc`] provides the exact M/M/1 and M/M/c (Erlang-C) results used to
//! validate the simulator; [`ggc`] the G/G/c bounds and approximations
//! behind Figure 6.

pub mod capacity;
pub mod cost;
pub mod ggc;
pub mod mmc;

pub use capacity::{EngineModel, EngineSizing};
pub use cost::{CostModel, CostReport};
pub use ggc::GgcModel;
pub use mmc::{MMc, MM1};
