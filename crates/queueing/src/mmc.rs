//! Exact M/M/1 and M/M/c queueing results.
//!
//! These closed forms serve two purposes: they validate the discrete-event
//! simulator (tests drive simulated M/M/1 traffic through `dwr_sim` and
//! compare against `MM1`), and they provide the service-time building
//! blocks of the engine-level analytical model.

/// An M/M/1 queue: Poisson arrivals at rate `lambda`, exponential service
/// at rate `mu`, one server.
#[derive(Debug, Clone, Copy)]
pub struct MM1 {
    /// Arrival rate (per second).
    pub lambda: f64,
    /// Service rate (per second).
    pub mu: f64,
}

impl MM1 {
    /// Create a model; stability requires `lambda < mu`.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda > 0.0 && mu > 0.0);
        MM1 { lambda, mu }
    }

    /// Utilization ρ = λ/μ.
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Whether the queue is stable (ρ < 1).
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Mean number in system `L = ρ/(1-ρ)` (requires stability).
    pub fn mean_in_system(&self) -> f64 {
        assert!(self.is_stable(), "unstable queue has no steady state");
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Mean response time `W = 1/(μ-λ)` (requires stability).
    pub fn mean_response_time(&self) -> f64 {
        assert!(self.is_stable());
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time in queue `Wq = ρ/(μ-λ)`.
    pub fn mean_wait(&self) -> f64 {
        assert!(self.is_stable());
        self.utilization() / (self.mu - self.lambda)
    }
}

/// An M/M/c queue: Poisson arrivals, exponential service, `c` servers.
#[derive(Debug, Clone, Copy)]
pub struct MMc {
    /// Arrival rate (per second).
    pub lambda: f64,
    /// Per-server service rate (per second).
    pub mu: f64,
    /// Number of servers.
    pub c: u32,
}

impl MMc {
    /// Create a model.
    pub fn new(lambda: f64, mu: f64, c: u32) -> Self {
        assert!(lambda > 0.0 && mu > 0.0 && c > 0);
        MMc { lambda, mu, c }
    }

    /// Offered load `a = λ/μ` in Erlangs.
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Per-server utilization `ρ = λ/(cμ)`.
    pub fn utilization(&self) -> f64 {
        self.offered_load() / f64::from(self.c)
    }

    /// Whether the queue is stable (ρ < 1).
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Erlang-C: probability an arriving job waits.
    ///
    /// Computed with the numerically stable iterative form of the Erlang-B
    /// recursion, then converted to Erlang-C.
    pub fn prob_wait(&self) -> f64 {
        assert!(self.is_stable());
        let a = self.offered_load();
        // Erlang-B recursion: B(0) = 1; B(k) = a·B(k-1) / (k + a·B(k-1)).
        let mut b = 1.0;
        for k in 1..=self.c {
            b = a * b / (f64::from(k) + a * b);
        }
        let rho = self.utilization();
        b / (1.0 - rho + rho * b)
    }

    /// Mean waiting time in queue.
    pub fn mean_wait(&self) -> f64 {
        assert!(self.is_stable());
        self.prob_wait() / (f64::from(self.c) * self.mu - self.lambda)
    }

    /// Mean response time (wait + service).
    pub fn mean_response_time(&self) -> f64 {
        self.mean_wait() + 1.0 / self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_sim::dist::Exponential;
    use dwr_sim::SimRng;

    #[test]
    fn mm1_closed_forms() {
        let q = MM1::new(8.0, 10.0);
        assert!((q.utilization() - 0.8).abs() < 1e-12);
        assert!((q.mean_in_system() - 4.0).abs() < 1e-12);
        assert!((q.mean_response_time() - 0.5).abs() < 1e-12);
        assert!((q.mean_wait() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no steady state")]
    fn mm1_unstable_panics() {
        MM1::new(10.0, 10.0).mean_in_system();
    }

    #[test]
    fn mmc_reduces_to_mm1() {
        let c1 = MMc::new(8.0, 10.0, 1);
        let m = MM1::new(8.0, 10.0);
        assert!((c1.mean_wait() - m.mean_wait()).abs() < 1e-9);
        // Erlang-C with one server = ρ.
        assert!((c1.prob_wait() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn more_servers_less_waiting() {
        let w2 = MMc::new(15.0, 10.0, 2).mean_wait();
        let w4 = MMc::new(15.0, 10.0, 4).mean_wait();
        let w8 = MMc::new(15.0, 10.0, 8).mean_wait();
        assert!(w2 > w4 && w4 > w8);
    }

    #[test]
    fn erlang_c_known_value() {
        // Classic check: a = 2 Erlangs, c = 3 → C(3, 2) ≈ 0.4444.
        let q = MMc::new(2.0, 1.0, 3);
        assert!((q.prob_wait() - 4.0 / 9.0).abs() < 1e-9, "got {}", q.prob_wait());
    }

    /// Drive a simulated M/M/1 queue through the event kernel and check the
    /// measured mean response time against the closed form — the kernel's
    /// end-to-end validation.
    #[test]
    fn simulated_mm1_matches_theory() {
        let lambda = 8.0;
        let mu = 10.0;
        let mut rng = SimRng::new(99);
        let arr = Exponential::new(lambda);
        let srv = Exponential::new(mu);
        let n = 200_000;
        let mut t_arrive = 0.0f64;
        let mut server_free = 0.0f64;
        let mut total_resp = 0.0f64;
        for _ in 0..n {
            t_arrive += arr.sample(&mut rng);
            let start = t_arrive.max(server_free);
            let done = start + srv.sample(&mut rng);
            server_free = done;
            total_resp += done - t_arrive;
        }
        let measured = total_resp / n as f64;
        let theory = MM1::new(lambda, mu).mean_response_time();
        assert!((measured - theory).abs() / theory < 0.05, "measured={measured} theory={theory}");
    }
}
