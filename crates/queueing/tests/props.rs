//! Property-based tests of the analytic models' invariants.

use dwr_queueing::capacity::EngineModel;
use dwr_queueing::cost::CostModel;
use dwr_queueing::ggc::GgcModel;
use dwr_queueing::mmc::{MMc, MM1};
use proptest::prelude::*;

proptest! {
    /// Erlang-C is a probability and grows with offered load.
    #[test]
    fn erlang_c_is_probability(mu in 0.1f64..100.0, c in 1u32..300, rho in 0.01f64..0.99) {
        let lambda = rho * f64::from(c) * mu;
        let q = MMc::new(lambda, mu, c);
        let p = q.prob_wait();
        prop_assert!((0.0..=1.0).contains(&p), "p={p}");
        // Monotone in lambda.
        let busier = MMc::new((lambda * 1.05).min(0.995 * f64::from(c) * mu), mu, c);
        prop_assert!(busier.prob_wait() >= p - 1e-9);
    }

    /// M/M/c waiting time is finite for stable systems and decreasing in c.
    #[test]
    fn mmc_wait_decreases_with_servers(mu in 0.5f64..50.0, lambda_frac in 0.1f64..0.9) {
        let c1 = 2u32;
        let c2 = 4u32;
        let lambda = lambda_frac * f64::from(c1) * mu;
        let w1 = MMc::new(lambda, mu, c1).mean_wait();
        let w2 = MMc::new(lambda, mu, c2).mean_wait();
        prop_assert!(w1.is_finite() && w2.is_finite());
        prop_assert!(w2 <= w1 + 1e-12);
    }

    /// M/M/1 response time always exceeds the bare service time.
    #[test]
    fn mm1_response_exceeds_service(mu in 0.1f64..100.0, rho in 0.01f64..0.99) {
        let q = MM1::new(rho * mu, mu);
        prop_assert!(q.mean_response_time() >= 1.0 / mu - 1e-12);
    }

    /// The Figure 6 curve is positive, finite, and strictly decreasing.
    #[test]
    fn capacity_curve_decreasing(c in 1u32..500, lo_ms in 1u64..50, span_ms in 1u64..200) {
        let lo = lo_ms as f64 / 1000.0;
        let hi = lo + span_ms as f64 / 1000.0;
        let curve = GgcModel::capacity_curve(c, lo, hi, 10);
        prop_assert!(curve.iter().all(|&(_, cap)| cap.is_finite() && cap > 0.0));
        prop_assert!(curve.windows(2).all(|w| w[0].1 > w[1].1));
    }

    /// Cost model outputs are positive and monotone in inputs.
    #[test]
    fn cost_model_monotone(pages_b in 1.0f64..100.0, qpd_m in 1.0f64..2000.0) {
        let base = CostModel {
            pages: pages_b * 1e9,
            queries_per_day: qpd_m * 1e6,
            ..CostModel::paper_2007()
        };
        let r = base.evaluate();
        prop_assert!(r.total_machines > 0.0 && r.hardware_dollars > 0.0);
        let more_data = CostModel { pages: base.pages * 2.0, ..base }.evaluate();
        prop_assert!(more_data.machines_per_cluster >= r.machines_per_cluster);
        let more_traffic = CostModel { queries_per_day: base.queries_per_day * 2.0, ..base }.evaluate();
        prop_assert!(more_traffic.clusters >= r.clusters);
    }

    /// The engine model, when feasible, keeps utilization under the target
    /// and produces self-consistent machine counts.
    #[test]
    fn engine_model_consistent(pages_b in 0.1f64..200.0, qps in 10.0f64..50_000.0) {
        let m = EngineModel {
            pages: pages_b * 1e9,
            qps,
            ..EngineModel::default_2007()
        };
        if let Some(s) = m.evaluate() {
            prop_assert_eq!(s.machines, s.partitions * s.replicas);
            prop_assert!(s.peak_response_time > 0.0 && s.peak_response_time.is_finite());
            let lambda_per_machine = m.qps * m.peak_factor / s.replicas as f64;
            let rho = lambda_per_machine * s.mean_service / f64::from(m.threads_per_machine);
            prop_assert!(rho <= m.target_utilization + 1e-9);
        }
    }
}
