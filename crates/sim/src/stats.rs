//! Measurement primitives shared by every experiment harness.
//!
//! Besides the usual streaming moments and percentile summaries, this module
//! provides the *imbalance* measures the paper's Section 4 revolves around:
//! when homogeneous servers are unevenly loaded, "the capacity of the busiest
//! server limits the total capacity of the system", so we report
//! max-to-average ratios, coefficients of variation, and Gini coefficients
//! for per-server load vectors.

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// Numerically stable for long runs; O(1) memory.
#[derive(Debug, Clone, Default)]
pub struct Streaming {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Streaming { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (`std_dev / mean`; 0 if the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean()
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Retains all samples; computes exact percentiles on demand.
///
/// Appropriate for the experiment scale in this repository (≤ millions of
/// samples); sorts lazily and caches the sorted order.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    data: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Create an empty sample set.
    pub fn new() -> Self {
        Samples { data: Vec::new(), sorted: true }
    }

    /// Create with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Samples { data: Vec::with_capacity(cap), sorted: true }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are no observations.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.data.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// Percentile in `[0, 100]` by nearest-rank with linear interpolation.
    /// Returns 0 for an empty set.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (self.data.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.data[lo]
        } else {
            let frac = rank - lo as f64;
            self.data[lo] * (1.0 - frac) + self.data[hi] * frac
        }
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Maximum (0 for an empty set).
    pub fn max(&mut self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.data.last().expect("non-empty")
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Create a histogram with `nbuckets` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Self {
        assert!(hi > lo && nbuckets > 0);
        Histogram { lo, hi, buckets: vec![0; nbuckets], below: 0, above: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let i = ((x - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let last = self.buckets.len() - 1;
            self.buckets[i.min(last)] += 1;
        }
    }

    /// Bucket counts (excluding out-of-range).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations below `lo`.
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Count of observations at or above `hi`.
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.below + self.above + self.buckets.iter().sum::<u64>()
    }

    /// The value range covered by bucket `i` as `(start, end)`.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

/// Load-imbalance measures over a per-server load vector.
///
/// These are the quantities Figure 2 of the paper visualizes: the dashed
/// line is the mean; a balanced system keeps every server near it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imbalance {
    /// Mean per-server load.
    pub mean: f64,
    /// Maximum per-server load.
    pub max: f64,
    /// Max-to-mean ratio (1.0 = perfectly balanced).
    pub max_over_mean: f64,
    /// Coefficient of variation across servers.
    pub cv: f64,
    /// Gini coefficient in `[0, 1)` (0 = perfectly balanced).
    pub gini: f64,
}

impl Imbalance {
    /// Compute imbalance statistics for a non-empty load vector.
    ///
    /// # Panics
    /// Panics if `loads` is empty or contains a negative value.
    pub fn of(loads: &[f64]) -> Self {
        assert!(!loads.is_empty(), "imbalance of empty load vector");
        assert!(loads.iter().all(|&l| l >= 0.0), "loads must be non-negative");
        let n = loads.len() as f64;
        let sum: f64 = loads.iter().sum();
        let mean = sum / n;
        let max = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let var = loads.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        // Gini via the sorted formula.
        let mut sorted = loads.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN load"));
        let gini = if sum > 0.0 {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n - 1.0) * x)
                .sum();
            weighted / (n * sum)
        } else {
            0.0
        };
        let max_over_mean = if mean > 0.0 { max / mean } else { 1.0 };
        Imbalance { mean, max, max_over_mean, cv, gini }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_moments() {
        let mut s = Streaming::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_empty_is_safe() {
        let s = Streaming::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = Samples::new();
        for x in 1..=100 {
            s.push(x as f64);
        }
        assert!((s.percentile(50.0) - 50.5).abs() < 1e-9);
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-9);
        assert!((s.percentile(100.0) - 100.0).abs() < 1e-9);
        assert!((s.percentile(95.0) - 95.05).abs() < 1e-9);
    }

    #[test]
    fn percentile_empty_returns_zero() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn percentile_single_sample() {
        let mut s = Samples::new();
        s.push(42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.percentile(99.0), 42.0);
    }

    #[test]
    fn histogram_buckets_and_ranges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 3.5, 9.9, -1.0, 10.0, 11.0] {
            h.record(x);
        }
        assert_eq!(h.below(), 1);
        assert_eq!(h.above(), 2);
        assert_eq!(h.total(), 8);
        assert_eq!(h.bucket_range(0), (0.0, 2.0));
        assert_eq!(h.bucket_range(4), (8.0, 10.0));
    }

    #[test]
    fn histogram_bucket_contents() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 3.5, 9.9] {
            h.record(x);
        }
        assert_eq!(h.buckets(), &[2, 2, 0, 0, 1]);
    }

    #[test]
    fn imbalance_uniform_is_balanced() {
        let i = Imbalance::of(&[3.0, 3.0, 3.0, 3.0]);
        assert!((i.max_over_mean - 1.0).abs() < 1e-12);
        assert!(i.cv.abs() < 1e-12);
        assert!(i.gini.abs() < 1e-12);
    }

    #[test]
    fn imbalance_skewed_detected() {
        let i = Imbalance::of(&[0.0, 0.0, 0.0, 12.0]);
        assert!((i.max_over_mean - 4.0).abs() < 1e-12);
        assert!(i.gini > 0.7);
        assert!(i.cv > 1.5);
    }

    #[test]
    fn imbalance_gini_ordering() {
        let balanced = Imbalance::of(&[5.0, 5.0, 5.0, 5.0]);
        let mild = Imbalance::of(&[4.0, 5.0, 5.0, 6.0]);
        let severe = Imbalance::of(&[1.0, 1.0, 1.0, 17.0]);
        assert!(balanced.gini < mild.gini);
        assert!(mild.gini < severe.gini);
    }

    #[test]
    #[should_panic]
    fn imbalance_rejects_empty() {
        Imbalance::of(&[]);
    }
}
