//! Measurement primitives shared by every experiment harness.
//!
//! Besides the usual streaming moments and percentile summaries, this module
//! provides the *imbalance* measures the paper's Section 4 revolves around:
//! when homogeneous servers are unevenly loaded, "the capacity of the busiest
//! server limits the total capacity of the system", so we report
//! max-to-average ratios, coefficients of variation, and Gini coefficients
//! for per-server load vectors.

/// Streaming mean/variance/min/max via Welford's algorithm.
///
/// Numerically stable for long runs; O(1) memory.
#[derive(Debug, Clone, Default)]
pub struct Streaming {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Streaming { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (`std_dev / mean`; 0 if the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean()
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Retains all samples; computes exact percentiles on demand.
///
/// Appropriate for the experiment scale in this repository (≤ millions of
/// samples); sorts lazily and caches the sorted order.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    data: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Create an empty sample set.
    pub fn new() -> Self {
        Samples { data: Vec::new(), sorted: true }
    }

    /// Create with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Samples { data: Vec::with_capacity(cap), sorted: true }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are no observations.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // Total order: a stray NaN (e.g. 0/0 from an empty-window
            // rate) sorts to the end instead of panicking mid-report.
            self.data.sort_unstable_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// Percentile in `[0, 100]` by nearest-rank with linear interpolation.
    /// Returns 0 for an empty set.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (self.data.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.data[lo]
        } else {
            let frac = rank - lo as f64;
            self.data[lo] * (1.0 - frac) + self.data[hi] * frac
        }
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Maximum (0 for an empty set).
    pub fn max(&mut self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.data.last().expect("non-empty")
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Create a histogram with `nbuckets` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Self {
        assert!(hi > lo && nbuckets > 0);
        Histogram { lo, hi, buckets: vec![0; nbuckets], below: 0, above: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let i = ((x - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let last = self.buckets.len() - 1;
            self.buckets[i.min(last)] += 1;
        }
    }

    /// Bucket counts (excluding out-of-range).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations below `lo`.
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Count of observations at or above `hi`.
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.below + self.above + self.buckets.iter().sum::<u64>()
    }

    /// The value range covered by bucket `i` as `(start, end)`.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

/// Number of buckets in the shared log-bucketed percentile layout
/// ([`log_bucket_index`]): 8 sub-buckets per octave over `2^-16 ..
/// 2^48`, wide enough for sub-µs costs up to years of simulated time.
pub const LOG_BUCKETS: usize = 512;

/// Sub-buckets per octave (relative bucket width `2^(1/8)` ≈ 9%).
const LOG_SUB: f64 = 8.0;
/// Exponent of the lower edge of bucket 1.
const LOG_MIN_EXP: f64 = -16.0;

/// Bucket index of a value in the shared log-bucketed layout. Values
/// `<= 0` (and NaN) land in bucket 0 alongside everything below `2^-16`;
/// values past the top edge saturate into the last bucket.
///
/// This mapping is shared between [`Percentiles`] here and the atomic
/// `dwr-obs` histogram, so the two are mergeable with each other.
pub fn log_bucket_index(x: f64) -> usize {
    if x <= 0.0 || !x.is_finite() {
        return 0;
    }
    let i = ((x.log2() - LOG_MIN_EXP) * LOG_SUB).floor();
    if i < 1.0 {
        0
    } else if i >= (LOG_BUCKETS - 1) as f64 {
        LOG_BUCKETS - 1
    } else {
        i as usize
    }
}

/// Lower edge of bucket `i` (bucket 0 opens at 0).
pub fn log_bucket_lo(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (i as f64 / LOG_SUB + LOG_MIN_EXP).exp2()
    }
}

/// Upper edge of bucket `i` (the last bucket is unbounded in `record`,
/// but reports use this nominal edge).
pub fn log_bucket_hi(i: usize) -> f64 {
    ((i as f64 + 1.0) / LOG_SUB + LOG_MIN_EXP).exp2()
}

/// A mergeable percentile summary over log-spaced buckets: O(1) push,
/// O(buckets) quantile, no sample retention — the streaming replacement
/// for sorting a full [`Samples`] vector.
///
/// Count, bucket occupancy, min, and max merge exactly (and hence
/// associatively); `sum` is a float accumulation whose value may differ
/// across merge orders by rounding only. Quantile estimates are exact to
/// one bucket width: the returned value is the upper edge of the bucket
/// holding the nearest-rank sample, clamped into `[min, max]`, so it
/// never deviates from the exact percentile by more than a factor of
/// `2^(1/8)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Percentiles {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Percentiles {
    fn default() -> Self {
        Self::new()
    }
}

impl Percentiles {
    /// Create an empty summary.
    pub fn new() -> Self {
        Percentiles {
            buckets: vec![0; LOG_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Rebuild a summary from raw parts (the bridge used by the atomic
    /// `dwr-obs` histogram's snapshot).
    ///
    /// # Panics
    /// Panics unless `buckets` has [`LOG_BUCKETS`] entries and their sum
    /// is `count`.
    pub fn from_parts(buckets: Vec<u64>, count: u64, sum: f64, min: f64, max: f64) -> Self {
        assert_eq!(buckets.len(), LOG_BUCKETS, "bucket layout mismatch");
        assert_eq!(buckets.iter().sum::<u64>(), count, "bucket occupancy must sum to count");
        Percentiles { buckets, count, sum, min, max }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.buckets[log_bucket_index(x)] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold another summary into this one.
    pub fn merge(&mut self, other: &Percentiles) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`+inf` if empty; exact, not bucketed).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty; exact, not bucketed).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Bucket occupancy (for merge tests and renderers).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Percentile in `[0, 100]` by nearest rank over the buckets,
    /// accurate to one bucket width. Returns 0 for an empty summary.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0 * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return log_bucket_hi(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.percentile(99.9)
    }
}

/// Load-imbalance measures over a per-server load vector.
///
/// These are the quantities Figure 2 of the paper visualizes: the dashed
/// line is the mean; a balanced system keeps every server near it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imbalance {
    /// Mean per-server load.
    pub mean: f64,
    /// Maximum per-server load.
    pub max: f64,
    /// Max-to-mean ratio (1.0 = perfectly balanced).
    pub max_over_mean: f64,
    /// Coefficient of variation across servers.
    pub cv: f64,
    /// Gini coefficient in `[0, 1)` (0 = perfectly balanced).
    pub gini: f64,
}

impl Imbalance {
    /// Compute imbalance statistics for a non-empty load vector.
    ///
    /// # Panics
    /// Panics if `loads` is empty or contains a negative value.
    pub fn of(loads: &[f64]) -> Self {
        assert!(!loads.is_empty(), "imbalance of empty load vector");
        assert!(loads.iter().all(|&l| l >= 0.0), "loads must be non-negative");
        let n = loads.len() as f64;
        let sum: f64 = loads.iter().sum();
        let mean = sum / n;
        let max = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let var = loads.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / n;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        // Gini via the sorted formula.
        let mut sorted = loads.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let gini = if sum > 0.0 {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n - 1.0) * x)
                .sum();
            weighted / (n * sum)
        } else {
            0.0
        };
        let max_over_mean = if mean > 0.0 { max / mean } else { 1.0 };
        Imbalance { mean, max, max_over_mean, cv, gini }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_moments() {
        let mut s = Streaming::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_empty_is_safe() {
        let s = Streaming::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = Samples::new();
        for x in 1..=100 {
            s.push(x as f64);
        }
        assert!((s.percentile(50.0) - 50.5).abs() < 1e-9);
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-9);
        assert!((s.percentile(100.0) - 100.0).abs() < 1e-9);
        assert!((s.percentile(95.0) - 95.05).abs() < 1e-9);
    }

    #[test]
    fn percentile_empty_returns_zero() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn percentile_single_sample() {
        let mut s = Samples::new();
        s.push(42.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.percentile(99.0), 42.0);
    }

    #[test]
    fn percentile_survives_nan_samples() {
        // Regression: the sort used `partial_cmp().expect("NaN sample")`,
        // so one NaN (e.g. a 0/0 rate) panicked the whole report. With
        // `total_cmp`, NaNs sort to the end and finite percentiles stay
        // meaningful.
        let mut s = Samples::new();
        for x in [3.0, f64::NAN, 1.0, 2.0] {
            s.push(x);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert!((s.median() - 2.5).abs() < 1e-9, "finite samples interpolate normally");
        assert!(s.max().is_nan(), "the NaN is visible at the top, not hidden");
    }

    #[test]
    fn histogram_buckets_and_ranges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 3.5, 9.9, -1.0, 10.0, 11.0] {
            h.record(x);
        }
        assert_eq!(h.below(), 1);
        assert_eq!(h.above(), 2);
        assert_eq!(h.total(), 8);
        assert_eq!(h.bucket_range(0), (0.0, 2.0));
        assert_eq!(h.bucket_range(4), (8.0, 10.0));
    }

    #[test]
    fn histogram_bucket_contents() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 3.5, 9.9] {
            h.record(x);
        }
        assert_eq!(h.buckets(), &[2, 2, 0, 0, 1]);
    }

    #[test]
    fn imbalance_uniform_is_balanced() {
        let i = Imbalance::of(&[3.0, 3.0, 3.0, 3.0]);
        assert!((i.max_over_mean - 1.0).abs() < 1e-12);
        assert!(i.cv.abs() < 1e-12);
        assert!(i.gini.abs() < 1e-12);
    }

    #[test]
    fn imbalance_skewed_detected() {
        let i = Imbalance::of(&[0.0, 0.0, 0.0, 12.0]);
        assert!((i.max_over_mean - 4.0).abs() < 1e-12);
        assert!(i.gini > 0.7);
        assert!(i.cv > 1.5);
    }

    #[test]
    fn imbalance_gini_ordering() {
        let balanced = Imbalance::of(&[5.0, 5.0, 5.0, 5.0]);
        let mild = Imbalance::of(&[4.0, 5.0, 5.0, 6.0]);
        let severe = Imbalance::of(&[1.0, 1.0, 1.0, 17.0]);
        assert!(balanced.gini < mild.gini);
        assert!(mild.gini < severe.gini);
    }

    #[test]
    #[should_panic]
    fn imbalance_rejects_empty() {
        Imbalance::of(&[]);
    }

    #[test]
    fn log_buckets_tile_the_positive_axis() {
        for i in 0..LOG_BUCKETS - 1 {
            assert_eq!(log_bucket_hi(i), log_bucket_lo(i + 1), "bucket {i} edges meet");
        }
        for &x in &[1e-9, 0.1, 1.0, 3.5, 200.0, 1e6, 1e12] {
            let i = log_bucket_index(x);
            assert!(log_bucket_lo(i) <= x && x < log_bucket_hi(i), "x={x} bucket {i}");
        }
        assert_eq!(log_bucket_index(0.0), 0);
        assert_eq!(log_bucket_index(-5.0), 0);
        assert_eq!(log_bucket_index(f64::NAN), 0);
        assert_eq!(log_bucket_index(f64::INFINITY), 0);
        assert_eq!(log_bucket_index(1e300), LOG_BUCKETS - 1);
    }

    #[test]
    fn percentiles_empty_is_safe() {
        let p = Percentiles::new();
        assert!(p.is_empty());
        assert_eq!(p.percentile(50.0), 0.0);
        assert_eq!(p.mean(), 0.0);
    }

    #[test]
    fn percentiles_single_sample_is_exact() {
        let mut p = Percentiles::new();
        p.push(42.0);
        // min/max clamping makes every quantile of one sample exact.
        assert_eq!(p.p50(), 42.0);
        assert_eq!(p.p999(), 42.0);
        assert_eq!(p.min(), 42.0);
        assert_eq!(p.max(), 42.0);
    }

    #[test]
    fn percentiles_within_one_bucket_of_exact() {
        let mut p = Percentiles::new();
        let mut s = Samples::new();
        for i in 1..=10_000u64 {
            let x = (i as f64).powf(1.7); // skewed positive samples
            p.push(x);
            s.push(x);
        }
        let g = (1.0f64 / 8.0).exp2(); // relative bucket width
        for q in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let est = p.percentile(q);
            let exact = s.percentile(q);
            assert!(
                est >= exact / g && est <= exact * g,
                "q={q}: est {est} vs exact {exact} beyond one bucket"
            );
        }
    }

    #[test]
    fn percentiles_merge_matches_single_pass() {
        let mut whole = Percentiles::new();
        let mut left = Percentiles::new();
        let mut right = Percentiles::new();
        for i in 0..1_000u64 {
            let x = 0.5 + (i % 97) as f64 * 3.0;
            whole.push(x);
            if i % 2 == 0 {
                left.push(x)
            } else {
                right.push(x)
            }
        }
        left.merge(&right);
        assert_eq!(left.buckets(), whole.buckets());
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        assert!((left.sum() - whole.sum()).abs() < 1e-6 * whole.sum().abs());
        for q in [50.0, 90.0, 99.0] {
            assert_eq!(left.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn percentiles_from_parts_round_trips() {
        let mut p = Percentiles::new();
        for x in [1.0, 2.0, 4.0, 1e6] {
            p.push(x);
        }
        let q = Percentiles::from_parts(p.buckets().to_vec(), p.count(), p.sum(), p.min(), p.max());
        assert_eq!(p, q);
    }

    #[test]
    #[should_panic(expected = "occupancy")]
    fn percentiles_from_parts_rejects_inconsistent_count() {
        Percentiles::from_parts(vec![0; LOG_BUCKETS], 3, 0.0, 0.0, 0.0);
    }
}
