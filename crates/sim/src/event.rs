//! Discrete-event simulation kernel.
//!
//! A minimal, allocation-light scheduler: events are arbitrary payloads
//! ordered by a microsecond virtual clock, with a monotonically increasing
//! sequence number breaking ties so that simultaneous events dequeue in FIFO
//! order. Determinism of the whole laboratory hangs on that tie-break — a
//! plain `BinaryHeap<(time, payload)>` would dequeue simultaneous events in
//! an order depending on heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in microseconds since simulation start.
pub type SimTime = u64;

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A time-ordered event queue with a virtual clock.
///
/// The clock advances to each event's timestamp as it is popped; scheduling
/// an event in the past is a logic error and panics (it would silently
/// reorder causality otherwise).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at 0.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), now: 0, seq: 0 }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "scheduling into the past: at={at} now={}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { time: at, seq, payload }));
    }

    /// Schedule `payload` at `delay` microseconds after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| {
            self.now = s.time;
            (s.time, s.payload)
        })
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Drain and drop all pending events (clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Convenience driver: pops events until the queue empties or `horizon` is
/// reached, invoking `handler(now, event, queue)` for each. The handler may
/// schedule further events.
pub fn run_until<E>(
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    mut handler: impl FnMut(SimTime, E, &mut EventQueue<E>),
) {
    while let Some(&Reverse(Scheduled { time, .. })) = queue.heap.peek() {
        if time > horizon {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked event exists");
        handler(now, ev, queue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        q.schedule_in(50, ());
        assert_eq!(q.peek_time(), Some(150));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        q.pop();
        q.schedule_at(50, ());
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        for t in [10u64, 20, 30, 40] {
            q.schedule_at(t, t);
        }
        let mut seen = Vec::new();
        run_until(&mut q, 25, |now, ev, _| {
            seen.push((now, ev));
        });
        assert_eq!(seen, vec![(10, 10), (20, 20)]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn handler_can_reschedule() {
        let mut q = EventQueue::new();
        q.schedule_at(1, 0u32);
        let mut count = 0;
        run_until(&mut q, 100, |_, gen, q| {
            count += 1;
            if gen < 5 {
                q.schedule_in(10, gen + 1);
            }
        });
        assert_eq!(count, 6);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule_at(5, ());
        q.schedule_at(6, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
