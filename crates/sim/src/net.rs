//! Network model: sites, links, latency and bandwidth.
//!
//! Section 5 of the paper stresses that "while in local-area networks
//! message latency is on the order of hundreds of microseconds, in
//! wide-area networks it can be as large as hundreds of milliseconds", and
//! that bandwidth is the scarce resource of distributed retrieval. The
//! model here captures exactly those two quantities: a message of `size`
//! bytes over a link costs `latency + size / bandwidth` (plus optional
//! jitter drawn by the caller).

use crate::event::SimTime;
use crate::rng::SimRng;
use crate::{MILLISECOND, SECOND};

/// Identifier of a site (a group of collocated servers, per the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

/// A point-to-point link with fixed base latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way base latency in microseconds.
    pub latency_us: SimTime,
    /// Bandwidth in bytes per simulated second.
    pub bandwidth_bps: u64,
    /// Relative jitter: the transfer time is multiplied by a factor drawn
    /// uniformly from `[1, 1 + jitter]`.
    pub jitter: f64,
}

impl Link {
    /// A typical LAN link: 200 µs latency, 1 GB/s, low jitter.
    pub fn lan() -> Self {
        Link { latency_us: 200, bandwidth_bps: 1_000_000_000, jitter: 0.1 }
    }

    /// A typical intra-continental WAN link: 30 ms latency, 100 MB/s.
    pub fn wan() -> Self {
        Link { latency_us: 30 * MILLISECOND, bandwidth_bps: 100_000_000, jitter: 0.3 }
    }

    /// A trans-oceanic WAN link: 150 ms latency, 50 MB/s.
    pub fn wan_far() -> Self {
        Link { latency_us: 150 * MILLISECOND, bandwidth_bps: 50_000_000, jitter: 0.3 }
    }

    /// Deterministic transfer time for a message of `bytes` bytes
    /// (no jitter applied).
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        let serialization = bytes.saturating_mul(SECOND) / self.bandwidth_bps.max(1);
        self.latency_us + serialization
    }

    /// Transfer time with multiplicative jitter drawn from `rng`.
    pub fn transfer_time_jittered(&self, bytes: u64, rng: &mut SimRng) -> SimTime {
        let base = self.transfer_time(bytes) as f64;
        (base * (1.0 + self.jitter * rng.f64())) as SimTime
    }
}

/// A symmetric topology of sites: every pair of sites has a link, and every
/// site has an internal (LAN) link used for intra-site communication.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    /// Upper-triangular inter-site links, indexed by `pair_index`.
    inter: Vec<Link>,
    intra: Link,
}

impl Topology {
    /// Create a topology of `n` sites where all inter-site links equal
    /// `inter` and intra-site traffic uses `intra`.
    pub fn uniform(n: usize, inter: Link, intra: Link) -> Self {
        assert!(n > 0);
        let pairs = n * (n.saturating_sub(1)) / 2;
        Topology { n, inter: vec![inter; pairs], intra }
    }

    /// Create a single-site (cluster-only) topology.
    pub fn single_site() -> Self {
        Self::uniform(1, Link::wan(), Link::lan())
    }

    /// A geographically spread topology: sites `0..n` placed on a ring;
    /// adjacent sites get `wan`, all others `wan_far`.
    pub fn geo_ring(n: usize) -> Self {
        assert!(n > 0);
        let mut topo = Self::uniform(n, Link::wan_far(), Link::lan());
        for i in 0..n {
            let j = (i + 1) % n;
            if i != j {
                topo.set_link(SiteId(i as u32), SiteId(j as u32), Link::wan());
            }
        }
        topo
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.n
    }

    fn pair_index(&self, a: SiteId, b: SiteId) -> usize {
        let (lo, hi) =
            if a.0 < b.0 { (a.0 as usize, b.0 as usize) } else { (b.0 as usize, a.0 as usize) };
        assert!(hi < self.n, "site out of range");
        // Index into the upper triangle laid out row by row.
        lo * self.n - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Replace the link between two distinct sites.
    pub fn set_link(&mut self, a: SiteId, b: SiteId, link: Link) {
        assert_ne!(a, b, "use the intra-site link for a == b");
        let idx = self.pair_index(a, b);
        self.inter[idx] = link;
    }

    /// The link used between sites `a` and `b` (the intra-site link when
    /// `a == b`).
    pub fn link(&self, a: SiteId, b: SiteId) -> Link {
        if a == b {
            self.intra
        } else {
            self.inter[self.pair_index(a, b)]
        }
    }

    /// One-way latency between two sites for a message of `bytes` bytes.
    pub fn transfer_time(&self, a: SiteId, b: SiteId, bytes: u64) -> SimTime {
        self.link(a, b).transfer_time(bytes)
    }

    /// Round-trip time for a request of `req` bytes and a response of
    /// `resp` bytes.
    pub fn rtt(&self, a: SiteId, b: SiteId, req: u64, resp: u64) -> SimTime {
        self.transfer_time(a, b, req) + self.transfer_time(b, a, resp)
    }

    /// The site nearest to `from` among `candidates` by small-message
    /// latency. Returns `None` if `candidates` is empty.
    pub fn nearest(&self, from: SiteId, candidates: &[SiteId]) -> Option<SiteId> {
        candidates.iter().copied().min_by_key(|&c| (self.transfer_time(from, c, 64), c.0))
    }

    /// Every site ordered by small-message latency from `from` (the
    /// failover preference order of the site tier): `from` itself first
    /// (intra-site latency is the smallest by construction of any sane
    /// topology), then by increasing WAN latency, ties broken by site id
    /// so the order is deterministic and independent of iteration order.
    pub fn order_by_latency(&self, from: SiteId) -> Vec<SiteId> {
        let mut order: Vec<SiteId> = (0..self.n as u32).map(SiteId).collect();
        order.sort_by_key(|&s| (self.transfer_time(from, s, 64), s.0));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_faster_than_wan() {
        assert!(Link::lan().transfer_time(1000) < Link::wan().transfer_time(1000));
        assert!(Link::wan().transfer_time(1000) < Link::wan_far().transfer_time(1000));
    }

    #[test]
    fn transfer_time_includes_serialization() {
        let l = Link { latency_us: 100, bandwidth_bps: 1_000_000, jitter: 0.0 };
        // 1 MB over 1 MB/s = 1 second of serialization.
        assert_eq!(l.transfer_time(1_000_000), 100 + SECOND);
        assert_eq!(l.transfer_time(0), 100);
    }

    #[test]
    fn jitter_bounded() {
        let l = Link { latency_us: 1000, bandwidth_bps: 1_000_000_000, jitter: 0.5 };
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            let t = l.transfer_time_jittered(0, &mut rng);
            assert!((1000..=1500).contains(&t), "t={t}");
        }
    }

    #[test]
    fn topology_symmetric() {
        let mut topo = Topology::uniform(4, Link::wan(), Link::lan());
        topo.set_link(SiteId(1), SiteId(3), Link::wan_far());
        assert_eq!(topo.link(SiteId(1), SiteId(3)), Link::wan_far());
        assert_eq!(topo.link(SiteId(3), SiteId(1)), Link::wan_far());
        assert_eq!(topo.link(SiteId(0), SiteId(2)), Link::wan());
        assert_eq!(topo.link(SiteId(2), SiteId(2)), Link::lan());
    }

    #[test]
    fn pair_index_covers_all_pairs() {
        let topo = Topology::uniform(5, Link::wan(), Link::lan());
        let mut seen = std::collections::HashSet::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                assert!(seen.insert(topo.pair_index(SiteId(a), SiteId(b))));
            }
        }
        assert_eq!(seen.len(), 10);
        assert!(seen.iter().all(|&i| i < 10));
    }

    #[test]
    fn geo_ring_adjacent_closer() {
        let topo = Topology::geo_ring(5);
        let near = topo.transfer_time(SiteId(0), SiteId(1), 64);
        let far = topo.transfer_time(SiteId(0), SiteId(2), 64);
        assert!(near < far);
    }

    #[test]
    fn nearest_picks_minimum_latency() {
        let topo = Topology::geo_ring(5);
        let c = [SiteId(2), SiteId(1), SiteId(3)];
        assert_eq!(topo.nearest(SiteId(0), &c), Some(SiteId(1)));
        assert_eq!(topo.nearest(SiteId(0), &[]), None);
    }

    #[test]
    fn nearest_includes_self() {
        let topo = Topology::geo_ring(3);
        assert_eq!(topo.nearest(SiteId(1), &[SiteId(0), SiteId(1)]), Some(SiteId(1)));
    }

    #[test]
    fn nearest_empty_candidates_is_none() {
        let topo = Topology::uniform(4, Link::wan(), Link::lan());
        for s in 0..4u32 {
            assert_eq!(topo.nearest(SiteId(s), &[]), None);
        }
    }

    #[test]
    fn nearest_self_as_candidate_wins() {
        // The intra-site (LAN) link beats every WAN link, so whenever the
        // origin is among the candidates it must win — regardless of its
        // position in the slice.
        let topo = Topology::geo_ring(5);
        for s in 0..5u32 {
            let all: Vec<SiteId> = (0..5).map(SiteId).collect();
            assert_eq!(topo.nearest(SiteId(s), &all), Some(SiteId(s)));
            let reversed: Vec<SiteId> = (0..5).rev().map(SiteId).collect();
            assert_eq!(topo.nearest(SiteId(s), &reversed), Some(SiteId(s)));
        }
    }

    #[test]
    fn nearest_tie_break_is_deterministic() {
        // Uniform topology: every remote candidate is equidistant. The
        // lowest site id must win, on every call, for any candidate order.
        let topo = Topology::uniform(6, Link::wan(), Link::lan());
        let a = [SiteId(4), SiteId(2), SiteId(5)];
        let b = [SiteId(5), SiteId(4), SiteId(2)];
        for _ in 0..3 {
            assert_eq!(topo.nearest(SiteId(0), &a), Some(SiteId(2)));
            assert_eq!(topo.nearest(SiteId(0), &b), Some(SiteId(2)));
        }
    }

    #[test]
    fn order_by_latency_is_total_and_deterministic() {
        let topo = Topology::geo_ring(5);
        let order = topo.order_by_latency(SiteId(3));
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], SiteId(3), "self first (LAN beats WAN)");
        // Ring neighbours (2 and 4) before the far sites, ties by id.
        assert_eq!(&order[1..3], &[SiteId(2), SiteId(4)]);
        assert_eq!(&order[3..], &[SiteId(0), SiteId(1)]);
        assert_eq!(order, topo.order_by_latency(SiteId(3)), "stable across calls");
        // Latencies are non-decreasing along the order.
        let lat: Vec<_> = order.iter().map(|&s| topo.transfer_time(SiteId(3), s, 64)).collect();
        assert!(lat.windows(2).all(|w| w[0] <= w[1]), "{lat:?}");
    }

    #[test]
    fn rtt_sums_both_directions() {
        let topo = Topology::uniform(2, Link::wan(), Link::lan());
        let one_way = topo.transfer_time(SiteId(0), SiteId(1), 100);
        assert_eq!(topo.rtt(SiteId(0), SiteId(1), 100, 100), 2 * one_way);
    }
}
