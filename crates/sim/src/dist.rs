//! Sampling distributions for Web-scale phenomena.
//!
//! The survey's imported results all rest on a small set of heavy-tailed
//! distributions:
//!
//! * **Zipf** — term frequencies, query popularity, host sizes. Implemented
//!   with Hörmann & Derflinger's rejection-inversion so sampling is O(1)
//!   regardless of the universe size (tens of millions of terms).
//! * **Bounded Pareto** — document lengths and posting-list sizes.
//! * **Exponential / Weibull** — failure and repair processes (Section 5,
//!   Figure 5).
//! * **Log-normal** — service times for the G/G/c experiments (Figure 6);
//!   log-normals have the high coefficient of variation observed in real
//!   query service times.
//! * **Poisson** — arrival counts, page-change events.
//! * **Alias method** — O(1) sampling from arbitrary empirical weights
//!   (e.g. a measured query distribution).

use crate::rng::SimRng;

/// Zipf distribution over ranks `1..=n` with exponent `s > 0`:
/// `P(k) ∝ k^-s`. Uses rejection-inversion (Hörmann & Derflinger 1996,
/// in the numerically stable formulation of Apache Commons Math's
/// `RejectionInversionZipfSampler`), O(1) per sample with bounded
/// rejection rate for any universe size.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// `H(1.5) - h(1)`
    h_x1: f64,
    /// `H(n + 0.5)`
    h_n: f64,
    /// Acceptance cut: `2 - H_inv(H(2.5) - h(2))`
    cut: f64,
}

/// `(exp(x) - 1) / x`, stable near 0.
#[inline]
fn expm1_over_x(x: f64) -> f64 {
    if x.abs() < 1e-8 {
        1.0 + x / 2.0
    } else {
        x.exp_m1() / x
    }
}

/// `ln(1 + x) / x`, stable near 0.
#[inline]
fn ln1p_over_x(x: f64) -> f64 {
    if x.abs() < 1e-8 {
        1.0 - x / 2.0
    } else {
        x.ln_1p() / x
    }
}

impl Zipf {
    /// Create a Zipf sampler over `1..=n` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty universe");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let h_integral = |x: f64| -> f64 {
            // H(x) = (x^(1-s) - 1) / (1 - s), expressed stably as
            // ln(x) * (e^((1-s) ln x) - 1) / ((1-s) ln x).
            let log_x = x.ln();
            expm1_over_x((1.0 - s) * log_x) * log_x
        };
        let h = |x: f64| -> f64 { (-s * x.ln()).exp() };
        let h_integral_inverse = |x: f64| -> f64 {
            // H_inv(x) = (1 + x (1-s))^(1/(1-s)), expressed stably.
            let mut t = x * (1.0 - s);
            if t < -1.0 {
                // Numerical guard: t < -1 would take the root of a
                // negative number; clamp to the domain boundary.
                t = -1.0;
            }
            (ln1p_over_x(t) * x).exp()
        };
        let h_x1 = h_integral(1.5) - 1.0;
        let h_n = h_integral(n as f64 + 0.5);
        let cut = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
        Zipf { n, s, h_x1, h_n, cut }
    }

    #[inline]
    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        expm1_over_x((1.0 - self.s) * log_x) * log_x
    }

    #[inline]
    fn h(&self, x: f64) -> f64 {
        (-self.s * x.ln()).exp()
    }

    #[inline]
    fn h_integral_inverse(&self, x: f64) -> f64 {
        let mut t = x * (1.0 - self.s);
        if t < -1.0 {
            t = -1.0;
        }
        (ln1p_over_x(t) * x).exp()
    }

    /// Number of ranks in the universe.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `1..=n`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            // u uniform in (H(n + 0.5), H(1.5) - h(1)], i.e. covering the
            // whole support with the hat function.
            let u = self.h_n + rng.f64() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inverse(u);
            let mut k = (x + 0.5) as i64;
            if k < 1 {
                k = 1;
            } else if k as u64 > self.n {
                k = self.n as i64;
            }
            let kf = k as f64;
            if kf - x <= self.cut || u >= self.h_integral(kf + 0.5) - self.h(kf) {
                return k as u64;
            }
        }
    }

    /// Exact probability mass of rank `k` (computed with the normalizing
    /// constant; O(n) the first time it matters — only used in tests and
    /// small analytic settings).
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n);
        let z: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / z
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create an exponential sampler with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0);
        Exponential { lambda }
    }

    /// Create from a mean instead of a rate.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// Draw a value.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.f64_open().ln() / self.lambda
    }

    /// The distribution mean `1/lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// Shape < 1 gives the "infant mortality" failure profile typical of
/// wide-area sites; shape = 1 reduces to the exponential.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Create a Weibull sampler. Both parameters must be positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0);
        Weibull { shape, scale }
    }

    /// Draw a value by inversion.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale * (-rng.f64_open().ln()).powf(1.0 / self.shape)
    }
}

/// Log-normal distribution parameterized by the *target* mean and the
/// coefficient of variation of the resulting distribution (not of the
/// underlying normal), which is how service times are usually specified.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a log-normal with the given mean and coefficient of variation
    /// (`cv = std-dev / mean`) of the sampled values.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv > 0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal { mu, sigma: sigma2.sqrt() }
    }

    /// Draw a value (Box–Muller on the underlying normal).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u1 = rng.f64_open();
        let u2 = rng.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Bounded Pareto on `[lo, hi]` with tail exponent `alpha`.
///
/// Used for document sizes and posting-list lengths, which are heavy-tailed
/// but physically bounded.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Create a bounded Pareto sampler with `0 < lo < hi` and `alpha > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        BoundedPareto { lo, hi, alpha }
    }

    /// Draw a value by inversion of the truncated CDF.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// Poisson sampler.
///
/// Uses Knuth's product method for small means and a normal approximation
/// (rounded, clamped at zero) for large means, which is accurate to well
/// under a percent for `mean > 30` — plenty for arrival-count modelling.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Create a Poisson sampler with the given positive mean.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0);
        Poisson { mean }
    }

    /// Draw a count.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.mean < 30.0 {
            let l = (-self.mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.f64_open();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let u1 = rng.f64_open();
            let u2 = rng.f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = self.mean + self.mean.sqrt() * z;
            if v < 0.0 {
                0
            } else {
                v.round() as u64
            }
        }
    }
}

/// Walker alias table: O(1) sampling from an arbitrary finite discrete
/// distribution given as (possibly unnormalized) non-negative weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build an alias table from weights. Zero weights are allowed (their
    /// outcomes are never sampled); the weights must not all be zero.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table over empty support");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical stragglers: set to 1 exactly.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the support is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw an outcome index.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xD15C0)
    }

    #[test]
    fn zipf_respects_bounds() {
        let z = Zipf::new(1000, 1.0);
        let mut r = rng();
        for _ in 0..20_000 {
            let k = z.sample(&mut r);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(10_000, 1.0);
        let mut r = rng();
        let n = 100_000;
        let ones = (0..n).filter(|_| z.sample(&mut r) == 1).count();
        // For s=1, N=10^4, P(1) = 1/H_N ≈ 1/9.79 ≈ 0.102
        let p = ones as f64 / n as f64;
        assert!((p - 0.102).abs() < 0.01, "p(1)={p}");
    }

    #[test]
    fn zipf_matches_pmf_for_small_universe() {
        let z = Zipf::new(5, 1.2);
        let mut r = rng();
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[(z.sample(&mut r) - 1) as usize] += 1;
        }
        for k in 1..=5u64 {
            let emp = counts[(k - 1) as usize] as f64 / n as f64;
            let want = z.pmf(k);
            assert!((emp - want).abs() < 0.01, "k={k} emp={emp} want={want}");
        }
    }

    #[test]
    fn zipf_s_near_one_does_not_blow_up() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        for _ in 0..1000 {
            z.sample(&mut r);
        }
    }

    #[test]
    fn exponential_mean() {
        let e = Exponential::with_mean(5.0);
        let mut r = rng();
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| e.sample(&mut r)).sum();
        assert!((sum / n as f64 - 5.0).abs() < 0.1);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0);
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| w.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn lognormal_mean_and_cv() {
        let ln = LogNormal::from_mean_cv(10.0, 1.5);
        let mut r = rng();
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| ln.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean={mean}");
        assert!((var.sqrt() / mean - 1.5).abs() < 0.1, "cv={}", var.sqrt() / mean);
    }

    #[test]
    fn bounded_pareto_in_bounds() {
        let bp = BoundedPareto::new(10.0, 10_000.0, 1.1);
        let mut r = rng();
        for _ in 0..50_000 {
            let x = bp.sample(&mut r);
            assert!((10.0..=10_000.0).contains(&x));
        }
    }

    #[test]
    fn poisson_small_mean() {
        let p = Poisson::new(3.0);
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| p.sample(&mut r)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_large_mean() {
        let p = Poisson::new(200.0);
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| p.sample(&mut r)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let mut r = rng();
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut r)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let want = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - want).abs() < 0.01, "i={i} got={got} want={want}");
        }
    }

    #[test]
    fn alias_table_zero_weight_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut r = rng();
        for _ in 0..10_000 {
            let i = t.sample(&mut r);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    #[should_panic]
    fn alias_table_rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn alias_table_rejects_negative() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
