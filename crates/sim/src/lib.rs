//! # dwr-sim — deterministic simulation substrate
//!
//! Foundation crate for the `ocean` distributed Web retrieval laboratory.
//! Everything the other crates simulate — crawling, distributed indexing,
//! query processing, failures — runs on the primitives defined here:
//!
//! * [`rng`] — a splittable, explicitly-seeded PRNG so every experiment in
//!   the repository is reproducible bit-for-bit from a single `u64` seed.
//! * [`dist`] — the heavy-tailed distributions the paper's survey results
//!   rest on (Zipf term/query popularity, power-law in-degree, bounded
//!   Pareto document sizes, exponential failure processes).
//! * [`stats`] — streaming moments, percentile summaries, histograms and
//!   imbalance measures used by every experiment harness.
//! * [`event`] — a discrete-event scheduler with a microsecond virtual
//!   clock and stable FIFO tie-breaking.
//! * [`net`] — latency/bandwidth models for LAN and WAN links between
//!   simulated sites (Section 5 of the paper).
//!
//! The kernel is intentionally free of wall-clock time and global state:
//! identical seeds produce identical traces, which the test suites of the
//! downstream crates rely on.

pub mod dist;
pub mod event;
pub mod net;
pub mod rng;
pub mod stats;

pub use event::{EventQueue, SimTime};
pub use rng::SimRng;

/// One second expressed in the simulator's microsecond clock.
pub const SECOND: SimTime = 1_000_000;
/// One millisecond expressed in the simulator's microsecond clock.
pub const MILLISECOND: SimTime = 1_000;
/// One simulated minute.
pub const MINUTE: SimTime = 60 * SECOND;
/// One simulated hour.
pub const HOUR: SimTime = 3_600 * SECOND;
/// One simulated day.
pub const DAY: SimTime = 24 * HOUR;
