//! Splittable deterministic pseudo-random number generation.
//!
//! The simulator needs reproducibility across two axes:
//!
//! 1. **Run-to-run** — the same seed must give the same trace, regardless of
//!    library versions. We therefore implement the generator locally
//!    (xoshiro256++ seeded through SplitMix64) instead of relying on the
//!    unspecified internals of an external crate.
//! 2. **Component-to-component** — adding a random draw to the crawler must
//!    not perturb the query-log generator. [`SimRng::fork`] derives an
//!    independent child stream from a label, so each subsystem owns its own
//!    stream.
//!
//! `SimRng` also implements [`rand::RngCore`], so the `rand` crate's
//! distribution adaptors can be used where convenient.

use rand::RngCore;

/// SplitMix64 step — used for seeding and for stream derivation.
///
/// This is the standard finalizer from Vigna's SplitMix64; it is a bijection
/// on `u64`, so distinct inputs always yield distinct outputs.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator with labelled sub-stream forking.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded from the seed with SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// Derive an independent child generator identified by `label`.
    ///
    /// Forking is stable: the child stream depends only on the parent's
    /// *seed-time* state and the label, never on how many numbers the parent
    /// has produced since. Cloning before any draws gives the same child.
    pub fn fork(&self, label: u64) -> Self {
        // Mix the label into the current state through SplitMix64 so that
        // nearby labels produce uncorrelated streams.
        let mut sm =
            self.s[0] ^ self.s[1].rotate_left(17) ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// Derive a child generator from a string label (e.g. a subsystem name).
    pub fn fork_named(&self, label: &str) -> Self {
        // FNV-1a over the label bytes: cheap, stable, and good enough for
        // stream separation (the result is re-mixed by `fork`).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.fork(h)
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]` — safe to pass to `ln()`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// with rejection, so the result is unbiased.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (reservoir sampling).
    ///
    /// Returned indices are in ascending order of first acceptance, not
    /// sorted numerically.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (SimRng::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SimRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = SimRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_under_parent_draws() {
        let mut parent = SimRng::new(7);
        let child_before = parent.fork(3);
        parent.next_u64();
        parent.next_u64();
        // fork depends on state, which has NOT advanced via immutable fork,
        // but next_u64 mutates. Fork must be taken from a clone at seed time
        // to be identical; verify forks of equal-state parents agree.
        let parent2 = SimRng::new(7);
        let child_again = parent2.fork(3);
        let mut c1 = child_before.clone();
        let mut c2 = child_again.clone();
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_distinct() {
        let parent = SimRng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let collisions = (0..200).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn fork_named_distinct() {
        let parent = SimRng::new(11);
        let mut a = parent.fork_named("crawler");
        let mut b = parent.fork_named("querylog");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = SimRng::new(3);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        let expect = n as f64 / 7.0;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.08, "counts={counts:?}");
        }
    }

    #[test]
    fn range_bounds_inclusive() {
        let mut rng = SimRng::new(13);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 12);
            assert!((10..=12).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 12;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::new(23);
        let sample = rng.sample_indices(1000, 50);
        assert_eq!(sample.len(), 50);
        let mut s = sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_indices_k_larger_than_n() {
        let mut rng = SimRng::new(29);
        let sample = rng.sample_indices(5, 50);
        assert_eq!(sample.len(), 5);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SimRng::new(31);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
