//! Property-based tests of the simulation kernel's invariants.

use dwr_sim::dist::{AliasTable, Exponential, Zipf};
use dwr_sim::event::EventQueue;
use dwr_sim::stats::{Imbalance, Samples, Streaming};
use dwr_sim::SimRng;
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut prev = 0u64;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    /// Simultaneous events preserve insertion (FIFO) order.
    #[test]
    fn event_queue_fifo_on_ties(n in 1usize..100, t in 0u64..1000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(t, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop(), Some((t, i)));
        }
    }

    /// `below(b)` always lands in `[0, b)`.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Forked streams are deterministic functions of (seed, label).
    #[test]
    fn rng_fork_deterministic(seed in any::<u64>(), label in any::<u64>()) {
        let mut a = SimRng::new(seed).fork(label);
        let mut b = SimRng::new(seed).fork(label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Shuffling preserves the multiset.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut xs in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut rng = SimRng::new(seed);
        let mut sorted_before = xs.clone();
        sorted_before.sort_unstable();
        rng.shuffle(&mut xs);
        xs.sort_unstable();
        prop_assert_eq!(xs, sorted_before);
    }

    /// Zipf samples stay inside the configured universe.
    #[test]
    fn zipf_in_bounds(seed in any::<u64>(), n in 1u64..100_000, s in 0.3f64..2.5) {
        let z = Zipf::new(n, s);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Exponential samples are non-negative and finite.
    #[test]
    fn exponential_nonnegative(seed in any::<u64>(), mean in 0.001f64..1e9) {
        let e = Exponential::with_mean(mean);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let x = e.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    /// Alias tables only emit indices with positive weight.
    #[test]
    fn alias_table_respects_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..50)
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let i = t.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight outcome {i}");
        }
    }

    /// Imbalance invariants: max/mean >= 1, Gini in [0, 1), and perfectly
    /// equal loads give 0 spread.
    #[test]
    fn imbalance_bounds(loads in prop::collection::vec(0.0f64..1e6, 1..64)) {
        prop_assume!(loads.iter().sum::<f64>() > 0.0);
        let i = Imbalance::of(&loads);
        prop_assert!(i.max_over_mean >= 1.0 - 1e-9);
        prop_assert!((0.0..1.0).contains(&i.gini), "gini={}", i.gini);
        prop_assert!(i.cv >= 0.0);
    }

    /// Percentiles are bracketed by min and max and monotone in p.
    #[test]
    fn percentiles_bracketed(xs in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let mut s = Samples::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            s.push(x);
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let p25 = s.percentile(25.0);
        let p50 = s.percentile(50.0);
        let p99 = s.percentile(99.0);
        prop_assert!(lo - 1e-6 <= p25 && p99 <= hi + 1e-6);
        prop_assert!(p25 <= p50 + 1e-9 && p50 <= p99 + 1e-9);
    }

    /// Merging log-bucketed summaries is associative on every exact
    /// field (buckets, count, min, max); only the float `sum` may differ
    /// by rounding across merge orders.
    #[test]
    fn percentiles_merge_associative(
        xs in prop::collection::vec(1e-6f64..1e9, 0..80),
        ys in prop::collection::vec(1e-6f64..1e9, 0..80),
        zs in prop::collection::vec(1e-6f64..1e9, 0..80),
    ) {
        let summarize = |v: &[f64]| {
            let mut p = dwr_sim::stats::Percentiles::new();
            for &x in v {
                p.push(x);
            }
            p
        };
        let (a, b, c) = (summarize(&xs), summarize(&ys), summarize(&zs));
        // (a ⊔ b) ⊔ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊔ (b ⊔ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.buckets(), right.buckets());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        let scale = 1.0 + left.sum().abs();
        prop_assert!((left.sum() - right.sum()).abs() < 1e-9 * scale);
    }

    /// A log-bucketed quantile estimate never strays more than one bucket
    /// width (a factor of 2^(1/8)) from the exact sample percentile.
    #[test]
    fn percentiles_agree_with_exact_within_one_bucket(
        xs in prop::collection::vec(1e-6f64..1e12, 1..300),
        q in 0.0f64..100.0,
    ) {
        let mut p = dwr_sim::stats::Percentiles::new();
        let mut exact = Samples::new();
        for &x in &xs {
            p.push(x);
            exact.push(x);
        }
        // Compare at the same nearest-rank convention the summary uses.
        let rank = (q / 100.0 * (xs.len() - 1) as f64).round() as usize;
        let mut sorted = xs.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let truth = sorted[rank];
        let est = p.percentile(q);
        let g = (1.0f64 / 8.0).exp2();
        prop_assert!(
            est >= truth / g - 1e-12 && est <= truth * g + 1e-12,
            "q={} est={} truth={}", q, est, truth
        );
    }

    /// Welford matches the two-pass computation.
    #[test]
    fn streaming_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let mut s = Streaming::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }
}
