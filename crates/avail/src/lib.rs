//! # dwr-avail — dependability models
//!
//! Section 5's dependability discussion rests on one empirical anchor —
//! **Figure 5**, the monthly availability of the 16 BIRN grid sites
//! (Junqueira & Marzullo \[38\]): "out of the 16 sites participating in this
//! system, on average 10 experience at least one outage (...) in a given
//! month". We do not have the BIRN monitoring traces, so [`failure`]
//! provides two-state renewal processes calibrated to that anchor, and
//! [`monthly`] regenerates the figure's histogram from them.
//!
//! [`site`] models multi-server sites (a site is down when a network
//! partition cuts it off or all its servers are down), [`quorum`] computes
//! coterie availability (majority, read-one/write-all), and [`placement`]
//! evaluates replica-placement strategies against the availability /
//! storage-overhead trade-off the paper leaves open.

pub mod failure;
pub mod monthly;
pub mod placement;
pub mod quorum;
pub mod site;

pub use failure::UpDownProcess;
pub use monthly::{availability_histogram, monthly_availability};
pub use site::{Site, SiteConfig};
