//! Coterie / quorum availability (Junqueira & Marzullo \[38\]).
//!
//! With `n` replicas of independent availability `p`, a protocol that needs
//! a quorum of `k` live replicas is available with the binomial tail
//! probability. The paper's replication discussion ("traditional
//! replication techniques potentially reduce the total capacity of the
//! system") trades these numbers against storage overhead in
//! [`crate::placement`].

/// Probability that at least `k` of `n` independent components with
/// availability `p` are up.
pub fn at_least_k_of_n(n: u32, k: u32, p: f64) -> f64 {
    assert!(k <= n && n > 0);
    assert!((0.0..=1.0).contains(&p));
    (k..=n).map(|i| binom_pmf(n, i, p)).sum()
}

/// Availability of a majority quorum over `n` replicas.
pub fn majority(n: u32, p: f64) -> f64 {
    at_least_k_of_n(n, n / 2 + 1, p)
}

/// Availability of read-one (any replica suffices).
pub fn read_one(n: u32, p: f64) -> f64 {
    at_least_k_of_n(n, 1, p)
}

/// Availability of write-all (every replica must be up).
pub fn write_all(n: u32, p: f64) -> f64 {
    at_least_k_of_n(n, n, p)
}

fn binom_pmf(n: u32, k: u32, p: f64) -> f64 {
    // Multiplicative binomial coefficient to avoid factorial overflow.
    let mut coeff = 1.0f64;
    for i in 0..k {
        coeff *= f64::from(n - i) / f64::from(k - i);
    }
    coeff * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binom_sums_to_one() {
        let total: f64 = (0..=10).map(|k| binom_pmf(10, k, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn read_one_beats_majority_beats_write_all() {
        let p = 0.9;
        for n in [3u32, 5, 7] {
            let r1 = read_one(n, p);
            let mj = majority(n, p);
            let wa = write_all(n, p);
            assert!(r1 > mj && mj > wa, "n={n} r1={r1} mj={mj} wa={wa}");
        }
    }

    #[test]
    fn majority_improves_with_replicas_when_p_high() {
        let p = 0.9;
        assert!(majority(3, p) > p); // 3-replica majority beats a single copy
        assert!(majority(5, p) > majority(3, p));
        assert!(majority(7, p) > majority(5, p));
    }

    #[test]
    fn majority_hurts_when_p_low() {
        // Below 1/2, more replicas make majority *worse*.
        let p = 0.4;
        assert!(majority(3, p) < p);
        assert!(majority(5, p) < majority(3, p));
    }

    #[test]
    fn known_value_majority_3_of_0_9() {
        // P(≥2 of 3 up) = 3·0.81·0.1 + 0.729 = 0.972.
        assert!((majority(3, 0.9) - 0.972).abs() < 1e-12);
    }

    #[test]
    fn write_all_is_p_to_the_n() {
        assert!((write_all(4, 0.8) - 0.8f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn read_one_is_complement_of_all_down() {
        assert!((read_one(4, 0.8) - (1.0 - 0.2f64.powi(4))).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(at_least_k_of_n(1, 1, 1.0), 1.0);
        assert_eq!(at_least_k_of_n(5, 1, 0.0), 0.0);
        assert!((at_least_k_of_n(5, 0, 0.3) - 1.0).abs() < 1e-12);
    }
}
