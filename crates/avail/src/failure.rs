//! Two-state (up/down) renewal failure processes.
//!
//! Time-to-failure is Weibull (shape < 1 captures the bursty outage
//! behaviour of wide-area sites; shape = 1 is the memoryless baseline) and
//! time-to-repair is exponential. The process materializes its down
//! intervals over a horizon, which everything else (site availability,
//! query-time failure injection) consumes.

use dwr_sim::dist::{Exponential, Weibull};
use dwr_sim::{SimRng, SimTime, HOUR};

/// A closed-open down interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownInterval {
    /// When the outage starts.
    pub start: SimTime,
    /// When the repair completes.
    pub end: SimTime,
}

impl DownInterval {
    /// Length of the outage.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }

    /// Whether the instant `t` falls inside the outage.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether the outage intersects the window `[lo, hi)`.
    pub fn intersects(&self, lo: SimTime, hi: SimTime) -> bool {
        self.start < hi && lo < self.end
    }

    /// Overlap of this interval with the window `[lo, hi)`.
    pub fn overlap(&self, lo: SimTime, hi: SimTime) -> SimTime {
        let s = self.start.max(lo);
        let e = self.end.min(hi);
        e.saturating_sub(s)
    }
}

/// An alternating up/down renewal process.
#[derive(Debug, Clone)]
pub struct UpDownProcess {
    /// Weibull shape of time-to-failure.
    pub ttf_shape: f64,
    /// Weibull scale of time-to-failure (µs).
    pub ttf_scale: f64,
    /// Mean time-to-repair (µs).
    pub mttr: f64,
}

impl UpDownProcess {
    /// Create a process with exponential (shape 1) failures.
    pub fn exponential(mtbf: SimTime, mttr: SimTime) -> Self {
        assert!(mtbf > 0 && mttr > 0);
        UpDownProcess { ttf_shape: 1.0, ttf_scale: mtbf as f64, mttr: mttr as f64 }
    }

    /// Create a bursty process (Weibull shape < 1) with the given *mean*
    /// time between failures.
    pub fn bursty(mtbf: SimTime, mttr: SimTime, shape: f64) -> Self {
        assert!(mtbf > 0 && mttr > 0 && shape > 0.0);
        // Mean of Weibull(k, λ) = λ Γ(1 + 1/k); solve scale for the mean.
        let scale = mtbf as f64 / gamma_1p(1.0 / shape);
        UpDownProcess { ttf_shape: shape, ttf_scale: scale, mttr: mttr as f64 }
    }

    /// Materialize all down intervals in `[0, horizon)`, in order.
    pub fn down_intervals(&self, horizon: SimTime, rng: &mut SimRng) -> Vec<DownInterval> {
        let ttf = Weibull::new(self.ttf_shape, self.ttf_scale);
        let ttr = Exponential::with_mean(self.mttr);
        let mut t = 0f64;
        let mut out = Vec::new();
        loop {
            t += ttf.sample(rng).max(1.0);
            if t >= horizon as f64 {
                break;
            }
            let start = t as SimTime;
            t += ttr.sample(rng).max(1.0);
            let end = (t as SimTime).min(horizon);
            out.push(DownInterval { start, end });
            if t >= horizon as f64 {
                break;
            }
        }
        out
    }

    /// Long-run availability `MTBF / (MTBF + MTTR)`.
    pub fn steady_state_availability(&self) -> f64 {
        let mtbf = self.ttf_scale * gamma_1p(1.0 / self.ttf_shape);
        mtbf / (mtbf + self.mttr)
    }

    /// A site-like default: about one outage per month, mean repair 6 h —
    /// calibrated so that roughly 10 of 16 sites see an outage in any
    /// month, matching the Figure 5 anchor.
    pub fn birn_like() -> Self {
        Self::exponential(30 * 24 * HOUR, 6 * HOUR)
    }

    /// The same process with both time scales multiplied by `factor`
    /// (shape preserved). `factor < 1` accelerates churn — failures *and*
    /// repairs come proportionally sooner, so the steady-state
    /// availability is unchanged while the *rate* of membership events
    /// scales by `1 / factor`. Churn-rate sweeps (`exp_crawl_faults`)
    /// use this to vary how often agents flap without also changing what
    /// fraction of the fleet is down on average.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite());
        UpDownProcess {
            ttf_shape: self.ttf_shape,
            ttf_scale: self.ttf_scale * factor,
            mttr: self.mttr * factor,
        }
    }
}

/// Γ(1 + x) for x in (0, ~10] via the Lanczos approximation — enough
/// precision for mean-matching Weibull scales.
fn gamma_1p(x: f64) -> f64 {
    // Lanczos g=7, n=9 coefficients.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let z = x; // computing Γ(z+1) with z = x
    let mut a = C[0];
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (z + i as f64);
    }
    let t = z + G + 0.5;
    (2.0 * std::f64::consts::PI).sqrt() * t.powf(z + 0.5) * (-t).exp() * a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_sim::DAY;

    #[test]
    fn gamma_known_values() {
        assert!((gamma_1p(1.0) - 1.0).abs() < 1e-9); // Γ(2) = 1
        assert!((gamma_1p(2.0) - 2.0).abs() < 1e-9); // Γ(3) = 2
        assert!((gamma_1p(0.5) - 0.886_226_925_452_758).abs() < 1e-9); // Γ(1.5)
    }

    #[test]
    fn intervals_ordered_and_bounded() {
        let p = UpDownProcess::birn_like();
        let mut rng = SimRng::new(1);
        let ivs = p.down_intervals(365 * DAY, &mut rng);
        assert!(!ivs.is_empty());
        for w in ivs.windows(2) {
            assert!(w[0].end <= w[1].start, "overlapping outages");
        }
        assert!(ivs.iter().all(|i| i.end <= 365 * DAY && i.start < i.end));
    }

    #[test]
    fn steady_state_matches_empirical() {
        let p = UpDownProcess::exponential(10 * DAY, DAY);
        let mut rng = SimRng::new(2);
        let horizon = 4_000 * DAY;
        let down: u64 = p.down_intervals(horizon, &mut rng).iter().map(|i| i.duration()).sum();
        let measured = 1.0 - down as f64 / horizon as f64;
        let theory = p.steady_state_availability();
        assert!((theory - 10.0 / 11.0).abs() < 1e-9);
        assert!((measured - theory).abs() < 0.01, "measured={measured} theory={theory}");
    }

    #[test]
    fn bursty_mean_preserved() {
        let p = UpDownProcess::bursty(10 * DAY, DAY, 0.6);
        let mut rng = SimRng::new(3);
        let ivs = p.down_intervals(5_000 * DAY, &mut rng);
        // Mean up-time between failures ≈ 10 days.
        let mut prev_end = 0u64;
        let mut gaps = Vec::new();
        for i in &ivs {
            gaps.push((i.start - prev_end) as f64);
            prev_end = i.end;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean / DAY as f64 - 10.0).abs() < 1.0, "mean gap {} days", mean / DAY as f64);
    }

    #[test]
    fn contains_and_intersects() {
        let iv = DownInterval { start: 10, end: 20 };
        assert!(!iv.contains(9));
        assert!(iv.contains(10));
        assert!(iv.contains(19));
        assert!(!iv.contains(20), "closed-open: repair instant is up");
        assert!(iv.intersects(0, 11));
        assert!(iv.intersects(19, 30));
        assert!(iv.intersects(12, 13));
        assert!(!iv.intersects(0, 10), "window ends as outage starts");
        assert!(!iv.intersects(20, 30), "window starts at repair");
    }

    #[test]
    fn overlap_computation() {
        let iv = DownInterval { start: 10, end: 20 };
        assert_eq!(iv.overlap(0, 100), 10);
        assert_eq!(iv.overlap(15, 100), 5);
        assert_eq!(iv.overlap(0, 15), 5);
        assert_eq!(iv.overlap(12, 18), 6);
        assert_eq!(iv.overlap(20, 30), 0);
        assert_eq!(iv.overlap(0, 10), 0);
    }

    #[test]
    fn scaled_preserves_availability_but_multiplies_event_rate() {
        let p = UpDownProcess::exponential(10 * DAY, DAY);
        let fast = p.scaled(0.25);
        assert!(
            (p.steady_state_availability() - fast.steady_state_availability()).abs() < 1e-12,
            "scaling both time constants must not change availability"
        );
        let horizon = 2_000 * DAY;
        let slow_n = p.down_intervals(horizon, &mut SimRng::new(4)).len() as f64;
        let fast_n = fast.down_intervals(horizon, &mut SimRng::new(4)).len() as f64;
        assert!(
            (fast_n / slow_n - 4.0).abs() < 0.5,
            "quartered time scale ⇒ ~4x the outages: slow={slow_n} fast={fast_n}"
        );
    }

    #[test]
    fn birn_like_outage_frequency() {
        // ~10 of 16 sites with ≥1 outage per month ⇒ per-site monthly
        // outage probability ≈ 0.63.
        let p = UpDownProcess::birn_like();
        let months = 400u64;
        let mut with_outage = 0u64;
        for m in 0..months {
            let ivs = p.down_intervals(30 * DAY, &mut SimRng::new(1000 + m));
            if !ivs.is_empty() {
                with_outage += 1;
            }
        }
        let frac = with_outage as f64 / months as f64;
        assert!((frac - 0.63).abs() < 0.08, "frac={frac}");
    }
}
