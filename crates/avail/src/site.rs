//! Multi-server sites.
//!
//! "We say that a site is unavailable if it is not possible to reach any
//! of the servers of this site, either because of a network partition or
//! because all servers have failed" (Section 5, discussing Figure 5). A
//! [`Site`] therefore combines one network-partition process with per-server
//! failure processes; its down intervals are the union of partition
//! intervals and the intersection of all server down intervals.

use crate::failure::{DownInterval, UpDownProcess};
use dwr_sim::{SimRng, SimTime, HOUR};

/// Configuration of one site.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Number of servers at the site.
    pub servers: usize,
    /// Failure process of the site's network connectivity.
    pub network: UpDownProcess,
    /// Failure process of each individual server.
    pub server: UpDownProcess,
}

impl SiteConfig {
    /// A BIRN-like site: a couple of servers, network dominated outages.
    pub fn birn_like(servers: usize) -> Self {
        SiteConfig {
            servers,
            network: UpDownProcess::birn_like(),
            // Servers fail rarer but repair slower (operator intervention).
            server: UpDownProcess::exponential(60 * 24 * HOUR, 12 * HOUR),
        }
    }
}

/// A materialized site timeline over a horizon.
#[derive(Debug, Clone)]
pub struct Site {
    downs: Vec<DownInterval>,
    horizon: SimTime,
}

impl Site {
    /// A site that never goes down over `[0, horizon)`.
    pub fn always_up(horizon: SimTime) -> Self {
        assert!(horizon > 0);
        Site { downs: Vec::new(), horizon }
    }

    /// Build a site timeline from hand-placed down intervals (tests,
    /// replayed traces). Intervals may arrive unsorted or overlapping;
    /// they are normalized to the disjoint ordered form, clipped to the
    /// horizon, and empty intervals are dropped.
    pub fn from_down_intervals(mut downs: Vec<DownInterval>, horizon: SimTime) -> Self {
        assert!(horizon > 0);
        for iv in &mut downs {
            iv.end = iv.end.min(horizon);
        }
        downs.retain(|iv| iv.start < iv.end);
        downs.sort_unstable_by_key(|iv| iv.start);
        Site { downs: union(&downs), horizon }
    }

    /// Simulate the site's unavailability over `[0, horizon)`.
    pub fn simulate(cfg: &SiteConfig, horizon: SimTime, rng: &mut SimRng) -> Self {
        assert!(cfg.servers > 0);
        let mut downs = cfg.network.down_intervals(horizon, rng);
        // All-servers-down intervals: intersect the servers' down sets.
        let mut all_down: Option<Vec<DownInterval>> = None;
        for _ in 0..cfg.servers {
            let d = cfg.server.down_intervals(horizon, rng);
            all_down = Some(match all_down {
                None => d,
                Some(acc) => intersect(&acc, &d),
            });
            if all_down.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        downs.extend(all_down.unwrap_or_default());
        downs.sort_unstable_by_key(|i| i.start);
        Site { downs: union(&downs), horizon }
    }

    /// The site's down intervals (disjoint, ordered).
    pub fn down_intervals(&self) -> &[DownInterval] {
        &self.downs
    }

    /// Whether the site is up at time `t`.
    pub fn is_up(&self, t: SimTime) -> bool {
        // Binary search over ordered disjoint intervals.
        self.downs
            .binary_search_by(|iv| {
                if iv.end <= t {
                    std::cmp::Ordering::Less
                } else if iv.start > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_err()
    }

    /// Whether any outage intersects the window `[lo, hi)` — i.e. whether
    /// a query occupying the site for that window would be lost to a
    /// whole-site failure, even if the site was up at dispatch time.
    pub fn fails_during(&self, lo: SimTime, hi: SimTime) -> bool {
        // First interval ending after `lo` is the only candidate.
        let idx = self.downs.partition_point(|iv| iv.end <= lo);
        self.downs.get(idx).is_some_and(|iv| iv.intersects(lo, hi))
    }

    /// Availability over the window `[lo, hi)`.
    pub fn availability_in(&self, lo: SimTime, hi: SimTime) -> f64 {
        assert!(hi > lo);
        let down: u64 = self.downs.iter().map(|i| i.overlap(lo, hi)).sum();
        1.0 - down as f64 / (hi - lo) as f64
    }

    /// Availability over the whole simulated horizon.
    pub fn availability(&self) -> f64 {
        self.availability_in(0, self.horizon)
    }

    /// The simulated horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }
}

/// Union of possibly overlapping intervals sorted by start.
fn union(sorted: &[DownInterval]) -> Vec<DownInterval> {
    let mut out: Vec<DownInterval> = Vec::with_capacity(sorted.len());
    for &iv in sorted {
        match out.last_mut() {
            Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
            _ => out.push(iv),
        }
    }
    out
}

/// Intersection of two disjoint, ordered interval sets.
fn intersect(a: &[DownInterval], b: &[DownInterval]) -> Vec<DownInterval> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let s = a[i].start.max(b[j].start);
        let e = a[i].end.min(b[j].end);
        if s < e {
            out.push(DownInterval { start: s, end: e });
        }
        if a[i].end < b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_sim::DAY;

    #[test]
    fn union_merges_overlaps() {
        let ivs = [
            DownInterval { start: 0, end: 10 },
            DownInterval { start: 5, end: 15 },
            DownInterval { start: 20, end: 25 },
            DownInterval { start: 25, end: 30 },
        ];
        let u = union(&ivs);
        assert_eq!(
            u,
            vec![DownInterval { start: 0, end: 15 }, DownInterval { start: 20, end: 30 }]
        );
    }

    #[test]
    fn intersect_basic() {
        let a = [DownInterval { start: 0, end: 10 }, DownInterval { start: 20, end: 30 }];
        let b = [DownInterval { start: 5, end: 25 }];
        assert_eq!(
            intersect(&a, &b),
            vec![DownInterval { start: 5, end: 10 }, DownInterval { start: 20, end: 25 }]
        );
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = [DownInterval { start: 0, end: 5 }];
        let b = [DownInterval { start: 5, end: 9 }];
        assert!(intersect(&a, &b).is_empty());
    }

    #[test]
    fn is_up_consistent_with_intervals() {
        let cfg = SiteConfig::birn_like(2);
        let mut rng = SimRng::new(5);
        let site = Site::simulate(&cfg, 90 * DAY, &mut rng);
        for iv in site.down_intervals() {
            assert!(!site.is_up(iv.start));
            assert!(!site.is_up(iv.end - 1));
            if iv.start > 0 {
                // The instant before an outage begins is up unless it
                // belongs to the previous interval.
            }
        }
        assert!(site.is_up(0) || !site.down_intervals().is_empty());
    }

    #[test]
    fn more_servers_higher_availability() {
        let horizon = 400 * DAY;
        // Make server failures dominant so redundancy matters.
        let mk = |servers| SiteConfig {
            servers,
            network: UpDownProcess::exponential(10_000 * DAY, HOUR),
            server: UpDownProcess::exponential(5 * DAY, DAY),
        };
        let avg = |cfg: &SiteConfig, seed: u64| {
            let mut acc = 0.0;
            for s in 0..20u64 {
                let mut rng = SimRng::new(seed + s);
                acc += Site::simulate(cfg, horizon, &mut rng).availability();
            }
            acc / 20.0
        };
        let a1 = avg(&mk(1), 100);
        let a2 = avg(&mk(2), 200);
        let a3 = avg(&mk(3), 300);
        assert!(a2 > a1, "a1={a1} a2={a2}");
        assert!(a3 > a2, "a2={a2} a3={a3}");
        assert!(a3 > 0.99);
    }

    #[test]
    fn always_up_and_hand_built_traces() {
        let up = Site::always_up(100);
        assert!(up.is_up(0) && up.is_up(99));
        assert!(!up.fails_during(0, 100));
        assert_eq!(up.availability(), 1.0);

        // Unsorted, overlapping, horizon-crossing input is normalized.
        let s = Site::from_down_intervals(
            vec![
                DownInterval { start: 50, end: 60 },
                DownInterval { start: 10, end: 20 },
                DownInterval { start: 15, end: 25 },
                DownInterval { start: 90, end: 300 },
            ],
            100,
        );
        assert_eq!(
            s.down_intervals(),
            &[
                DownInterval { start: 10, end: 25 },
                DownInterval { start: 50, end: 60 },
                DownInterval { start: 90, end: 100 },
            ]
        );
        assert!(s.is_up(9) && !s.is_up(10) && !s.is_up(24) && s.is_up(25));
    }

    #[test]
    fn fails_during_detects_mid_window_outage() {
        let s = Site::from_down_intervals(vec![DownInterval { start: 100, end: 200 }], 1000);
        assert!(s.fails_during(90, 110), "outage starts inside the window");
        assert!(s.fails_during(150, 160), "window entirely inside the outage");
        assert!(s.fails_during(190, 260), "window starts inside the outage");
        assert!(!s.fails_during(0, 100), "window closes as the outage starts");
        assert!(!s.fails_during(200, 300), "window opens at repair");
        assert!(!s.fails_during(300, 1000), "nothing after repair");
    }

    #[test]
    fn availability_window_bounds() {
        let cfg = SiteConfig::birn_like(1);
        let mut rng = SimRng::new(6);
        let site = Site::simulate(&cfg, 60 * DAY, &mut rng);
        let a = site.availability();
        assert!((0.0..=1.0).contains(&a));
        // Month windows are consistent with the whole-horizon number.
        let a0 = site.availability_in(0, 30 * DAY);
        let a1 = site.availability_in(30 * DAY, 60 * DAY);
        assert!(((a0 + a1) / 2.0 - a).abs() < 1e-9);
    }
}
