//! Figure 5 machinery: monthly site-availability histograms.
//!
//! Figure 5 plots, for a set of availability thresholds on the x-axis, the
//! *average number of sites* whose monthly availability fell **under** the
//! threshold, averaged over the measurement months. The first bar ("under
//! 100%") counts sites with at least one outage in a month — on average 10
//! of BIRN's 16 sites.

use crate::site::{Site, SiteConfig};
use dwr_sim::{SimRng, SimTime, DAY};

/// Per-site, per-month availabilities: `result[site][month]`.
pub fn monthly_availability(configs: &[SiteConfig], months: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(months > 0 && !configs.is_empty());
    let month: SimTime = 30 * DAY;
    let horizon = month * months as u64;
    let root = SimRng::new(seed).fork_named("sites");
    configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            let mut rng = root.fork(i as u64);
            let site = Site::simulate(cfg, horizon, &mut rng);
            (0..months)
                .map(|m| site.availability_in(m as u64 * month, (m as u64 + 1) * month))
                .collect()
        })
        .collect()
}

/// The Figure 5 histogram: for each threshold, the average (over months)
/// number of sites with monthly availability strictly under the threshold.
///
/// Pass thresholds ascending, ending at 1.0 (the "<100%" bar).
pub fn availability_histogram(monthly: &[Vec<f64>], thresholds: &[f64]) -> Vec<f64> {
    assert!(!monthly.is_empty());
    let months = monthly[0].len();
    assert!(monthly.iter().all(|m| m.len() == months));
    thresholds
        .iter()
        .map(|&th| {
            let mut total = 0usize;
            for m in 0..months {
                total += monthly.iter().filter(|site| site[m] < th).count();
            }
            total as f64 / months as f64
        })
        .collect()
}

/// The standard Figure 5 threshold grid.
pub fn figure5_thresholds() -> Vec<f64> {
    vec![0.95, 0.96, 0.97, 0.98, 0.99, 0.995, 0.999, 1.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birn() -> Vec<SiteConfig> {
        (0..16).map(|_| SiteConfig::birn_like(2)).collect()
    }

    #[test]
    fn shapes_are_right() {
        let m = monthly_availability(&birn(), 8, 1);
        assert_eq!(m.len(), 16);
        assert!(m.iter().all(|s| s.len() == 8));
        assert!(m.iter().flatten().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn histogram_monotone_in_threshold() {
        let m = monthly_availability(&birn(), 8, 2);
        let h = availability_histogram(&m, &figure5_thresholds());
        assert!(h.windows(2).all(|w| w[0] <= w[1]), "{h:?}");
        assert!(h.iter().all(|&c| (0.0..=16.0).contains(&c)));
    }

    #[test]
    fn under_100_matches_paper_anchor() {
        // Average over several seeds to damp noise; the calibrated
        // processes should put roughly 10 of 16 sites under 100% monthly.
        let mut acc = 0.0;
        let runs = 10;
        for s in 0..runs {
            let m = monthly_availability(&birn(), 8, 100 + s);
            let h = availability_histogram(&m, &[1.0]);
            acc += h[0];
        }
        let avg = acc / runs as f64;
        assert!((avg - 10.0).abs() < 1.8, "avg sites <100% = {avg}");
    }

    #[test]
    fn perfect_sites_yield_empty_histogram() {
        use crate::failure::UpDownProcess;
        use dwr_sim::HOUR;
        let perfect = SiteConfig {
            servers: 1,
            network: UpDownProcess::exponential(u64::MAX / 4, HOUR),
            server: UpDownProcess::exponential(u64::MAX / 4, HOUR),
        };
        let m = monthly_availability(&vec![perfect; 4], 3, 3);
        let h = availability_histogram(&m, &figure5_thresholds());
        assert!(h.iter().all(|&c| c == 0.0), "{h:?}");
    }
}
