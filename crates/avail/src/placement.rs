//! Replica placement vs. availability vs. storage overhead.
//!
//! "Having all query processors storing the same data (...) achieves the
//! best availability level possible. This is likely to impose a
//! significant and unnecessary overhead (...) an open question is how to
//! replicate data in such a way that the system achieves adequate levels
//! of availability with minimal storage overhead" (Section 5). This module
//! evaluates placement strategies: each of `objects` data shards is placed
//! on `r` of `n` sites; an object is available when at least one holding
//! site is up, and a *query* (which must reach every shard) succeeds when
//! all objects are available.

use dwr_sim::SimRng;

/// How replicas are spread over sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Each object picks `r` distinct sites uniformly at random.
    Random,
    /// Object `i` goes to sites `i, i+1, …, i+r-1 (mod n)` — "chained
    /// declustering"; balanced and deterministic.
    RoundRobin,
    /// All objects go to the `r` most available sites (concentrated).
    BestSites,
}

/// A materialized placement: `sites_of[obj]` = holding sites.
#[derive(Debug, Clone)]
pub struct Placement {
    sites_of: Vec<Vec<u32>>,
    num_sites: u32,
}

impl Placement {
    /// Place `objects` shards on `r` of `n` sites with the given strategy.
    /// `site_availability` is used by [`PlacementStrategy::BestSites`].
    pub fn new(
        strategy: PlacementStrategy,
        objects: usize,
        n: u32,
        r: u32,
        site_availability: &[f64],
        rng: &mut SimRng,
    ) -> Self {
        assert!(r >= 1 && r <= n && n > 0);
        assert_eq!(site_availability.len(), n as usize);
        let sites_of = match strategy {
            PlacementStrategy::Random => (0..objects)
                .map(|_| {
                    rng.sample_indices(n as usize, r as usize)
                        .into_iter()
                        .map(|s| s as u32)
                        .collect()
                })
                .collect(),
            PlacementStrategy::RoundRobin => {
                (0..objects).map(|i| (0..r).map(|j| (i as u32 + j) % n).collect()).collect()
            }
            PlacementStrategy::BestSites => {
                let mut order: Vec<u32> = (0..n).collect();
                // total_cmp: a NaN availability (corrupt telemetry) must
                // sort deterministically instead of panicking.
                order.sort_by(|&a, &b| {
                    site_availability[b as usize]
                        .total_cmp(&site_availability[a as usize])
                        .then(a.cmp(&b))
                });
                let best: Vec<u32> = order.into_iter().take(r as usize).collect();
                vec![best; objects]
            }
        };
        Placement { sites_of, num_sites: n }
    }

    /// Number of objects.
    pub fn objects(&self) -> usize {
        self.sites_of.len()
    }

    /// Storage overhead factor (replicas per object).
    pub fn storage_overhead(&self) -> f64 {
        if self.sites_of.is_empty() {
            return 0.0;
        }
        self.sites_of.iter().map(Vec::len).sum::<usize>() as f64 / self.sites_of.len() as f64
    }

    /// Number of objects stored per site (load placed on each site).
    pub fn per_site_load(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.num_sites as usize];
        for sites in &self.sites_of {
            for &s in sites {
                load[s as usize] += 1;
            }
        }
        load
    }

    /// Given which sites are up, the fraction of objects reachable.
    pub fn objects_available(&self, up: &[bool]) -> f64 {
        assert_eq!(up.len(), self.num_sites as usize);
        if self.sites_of.is_empty() {
            return 1.0;
        }
        let ok = self.sites_of.iter().filter(|sites| sites.iter().any(|&s| up[s as usize])).count();
        ok as f64 / self.sites_of.len() as f64
    }

    /// Whether a full-coverage query (needs every object) succeeds.
    pub fn query_succeeds(&self, up: &[bool]) -> bool {
        self.objects_available(up) >= 1.0
    }

    /// Monte-Carlo estimate of `(mean object availability, query success
    /// probability)` under independent site availabilities.
    pub fn estimate(
        &self,
        site_availability: &[f64],
        trials: usize,
        rng: &mut SimRng,
    ) -> (f64, f64) {
        assert_eq!(site_availability.len(), self.num_sites as usize);
        let mut obj_acc = 0.0;
        let mut query_ok = 0usize;
        let mut up = vec![false; site_availability.len()];
        for _ in 0..trials {
            for (u, &p) in up.iter_mut().zip(site_availability) {
                *u = rng.chance(p);
            }
            obj_acc += self.objects_available(&up);
            query_ok += usize::from(self.query_succeeds(&up));
        }
        (obj_acc / trials as f64, query_ok as f64 / trials as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail(n: u32) -> Vec<f64> {
        (0..n).map(|i| 0.85 + 0.01 * f64::from(i % 10)).collect()
    }

    #[test]
    fn overhead_equals_r() {
        let mut rng = SimRng::new(1);
        for strat in
            [PlacementStrategy::Random, PlacementStrategy::RoundRobin, PlacementStrategy::BestSites]
        {
            let p = Placement::new(strat, 100, 8, 3, &avail(8), &mut rng);
            assert!((p.storage_overhead() - 3.0).abs() < 1e-12, "{strat:?}");
        }
    }

    #[test]
    fn round_robin_balances_load() {
        let mut rng = SimRng::new(2);
        let p = Placement::new(PlacementStrategy::RoundRobin, 80, 8, 2, &avail(8), &mut rng);
        let load = p.per_site_load();
        assert!(load.iter().all(|&l| l == 20), "{load:?}");
    }

    #[test]
    fn best_sites_concentrates_load() {
        let mut rng = SimRng::new(3);
        let p = Placement::new(PlacementStrategy::BestSites, 80, 8, 2, &avail(8), &mut rng);
        let load = p.per_site_load();
        assert_eq!(load.iter().filter(|&&l| l > 0).count(), 2);
    }

    #[test]
    fn more_replicas_more_available() {
        let mut rng = SimRng::new(4);
        let a = avail(10);
        let mut prev = 0.0;
        for r in 1..=4 {
            let p = Placement::new(PlacementStrategy::Random, 50, 10, r, &a, &mut rng);
            let (obj, _) = p.estimate(&a, 4000, &mut rng);
            assert!(obj >= prev - 0.01, "r={r} obj={obj} prev={prev}");
            prev = obj;
        }
        assert!(prev > 0.999, "r=4 availability {prev}");
    }

    #[test]
    fn query_success_needs_every_object() {
        let mut rng = SimRng::new(5);
        let a = avail(10);
        let p1 = Placement::new(PlacementStrategy::Random, 50, 10, 1, &a, &mut rng);
        let (obj, query) = p1.estimate(&a, 4000, &mut rng);
        // With r=1 and ~0.9 site availability, most objects survive, but a
        // full-coverage query needs *every* holding site up at once
        // (≈ prod(p_i) ≈ 0.33 here) — far below per-object availability.
        assert!(obj > 0.8);
        assert!(query < obj - 0.3, "query={query} obj={obj}");
    }

    #[test]
    fn all_sites_up_means_everything_available() {
        let mut rng = SimRng::new(6);
        let p = Placement::new(PlacementStrategy::Random, 20, 5, 2, &avail(5), &mut rng);
        let up = vec![true; 5];
        assert_eq!(p.objects_available(&up), 1.0);
        assert!(p.query_succeeds(&up));
    }

    #[test]
    fn all_sites_down_means_nothing_available() {
        let mut rng = SimRng::new(7);
        let p = Placement::new(PlacementStrategy::RoundRobin, 20, 5, 2, &avail(5), &mut rng);
        let up = vec![false; 5];
        assert_eq!(p.objects_available(&up), 0.0);
        assert!(!p.query_succeeds(&up));
    }

    #[test]
    fn nan_availability_does_not_panic_best_sites() {
        // Regression: ranking sites by availability used partial_cmp with
        // an expect(), so one NaN measurement panicked the placement. With
        // total_cmp the NaN site sorts deterministically and the placement
        // stays well-formed.
        let mut rng = SimRng::new(9);
        let mut a = avail(6);
        a[2] = f64::NAN;
        let p = Placement::new(PlacementStrategy::BestSites, 40, 6, 3, &a, &mut rng);
        assert_eq!(p.objects(), 40);
        for sites in &p.sites_of {
            let mut s = sites.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "3 distinct sites per object");
        }
        // Determinism across calls with the same inputs.
        let q = Placement::new(PlacementStrategy::BestSites, 40, 6, 3, &a, &mut SimRng::new(9));
        assert_eq!(p.sites_of, q.sites_of);
    }

    #[test]
    fn random_places_distinct_sites() {
        let mut rng = SimRng::new(8);
        let p = Placement::new(PlacementStrategy::Random, 200, 6, 3, &avail(6), &mut rng);
        for i in 0..p.objects() {
            let mut s = p.sites_of[i].clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3);
        }
    }
}
