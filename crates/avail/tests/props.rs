//! Property-based tests of dependability invariants.

use dwr_avail::failure::UpDownProcess;
use dwr_avail::quorum::{at_least_k_of_n, majority, read_one, write_all};
use dwr_avail::site::{Site, SiteConfig};
use dwr_sim::{SimRng, DAY, HOUR};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quorum availability is monotone in component availability.
    #[test]
    fn quorum_monotone_in_p(n in 1u32..12, k_off in 0u32..12, p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let k = k_off % n + 1;
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(at_least_k_of_n(n, k, lo) <= at_least_k_of_n(n, k, hi) + 1e-12);
    }

    /// Needing more components can never raise availability.
    #[test]
    fn quorum_antitone_in_k(n in 1u32..12, p in 0.0f64..1.0) {
        let mut prev = 1.0f64 + 1e-12;
        for k in 1..=n {
            let a = at_least_k_of_n(n, k, p);
            prop_assert!(a <= prev + 1e-12, "k={k} a={a} prev={prev}");
            prev = a;
        }
    }

    /// The binomial tail is a probability: in [0, 1] for every (n, k, p).
    #[test]
    fn quorum_stays_in_unit_interval(n in 1u32..16, k_off in 0u32..16, p in 0.0f64..1.0) {
        let k = k_off % (n + 1); // include the degenerate k = 0
        let a = at_least_k_of_n(n, k, p);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&a), "n={n} k={k} p={p} a={a}");
    }

    /// The named protocols are exactly the tail at their quorum size:
    /// majority at ⌊n/2⌋+1, read-one at 1, write-all at n.
    #[test]
    fn named_quorums_agree_with_tail(n in 1u32..16, p in 0.0f64..1.0) {
        prop_assert_eq!(majority(n, p), at_least_k_of_n(n, n / 2 + 1, p));
        prop_assert_eq!(read_one(n, p), at_least_k_of_n(n, 1, p));
        prop_assert_eq!(write_all(n, p), at_least_k_of_n(n, n, p));
    }

    /// read-one >= majority >= write-all, always.
    #[test]
    fn quorum_ordering(n in 1u32..12, p in 0.0f64..1.0) {
        let r = read_one(n, p);
        let m = majority(n, p);
        let w = write_all(n, p);
        prop_assert!(r >= m - 1e-12);
        prop_assert!(m >= w - 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
    }

    /// Down intervals are ordered, disjoint, and inside the horizon.
    #[test]
    fn down_intervals_well_formed(seed in any::<u64>(), mtbf_days in 1u64..60, mttr_hours in 1u64..48) {
        let p = UpDownProcess::exponential(mtbf_days * DAY, mttr_hours * HOUR);
        let mut rng = SimRng::new(seed);
        let horizon = 300 * DAY;
        let ivs = p.down_intervals(horizon, &mut rng);
        for iv in &ivs {
            prop_assert!(iv.start < iv.end);
            prop_assert!(iv.end <= horizon);
        }
        for w in ivs.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// Site availability over any window is in \[0, 1\], and point queries
    /// agree with interval membership.
    #[test]
    fn site_availability_consistent(seed in any::<u64>(), servers in 1usize..4) {
        let cfg = SiteConfig::birn_like(servers);
        let mut rng = SimRng::new(seed);
        let site = Site::simulate(&cfg, 120 * DAY, &mut rng);
        let a = site.availability();
        prop_assert!((0.0..=1.0).contains(&a));
        for iv in site.down_intervals().iter().take(5) {
            prop_assert!(!site.is_up(iv.start));
            prop_assert!(!site.is_up(iv.end - 1));
            prop_assert!(site.is_up(iv.end));
        }
    }

    /// Steady-state availability formula stays in (0, 1).
    #[test]
    fn steady_state_in_unit_interval(mtbf in 1u64..1_000_000, mttr in 1u64..1_000_000) {
        let p = UpDownProcess::exponential(mtbf, mttr);
        let a = p.steady_state_availability();
        prop_assert!(a > 0.0 && a < 1.0);
    }
}
