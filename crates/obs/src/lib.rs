//! # dwr-obs — zero-cost observability for the serving path
//!
//! The paper's Section 4 warning — "the capacity of the busiest server
//! limits the total capacity of the system" — and its headline artifacts
//! (Figure 2's per-server busy load, Figure 6's capacity curve) are all
//! *measurement* claims. This crate is the measurement layer: live
//! instruments on the query path instead of post-hoc bookkeeping, so
//! per-stage latency tails, per-shard busy load, failover traces, and
//! cache hit curves come from the serving stack itself.
//!
//! * [`instrument`] — lock-free primitives: atomic [`Counter`]s and
//!   [`Gauge`]s, plus a mergeable log-bucketed [`Histogram`] (atomic
//!   buckets, p50/p90/p99/p999, exact min/max/count) whose bucket layout
//!   is shared with `dwr_sim::stats::Percentiles`;
//! * [`registry`] — a [`Registry`] of named instruments with
//!   [`Snapshot`] export in aligned-text and JSON forms;
//! * [`span`] — a sampled per-query [`SpanRecorder`]: a fixed-capacity
//!   ring buffer of [`Span`]s recording the stages of one query keyed to
//!   the deterministic sim clock (broker admit → cache lookup → scatter
//!   dispatch → per-shard service → gather → hedge/failover attempts →
//!   WAN hops);
//! * [`recorder`] — the [`Recorder`] trait the serving stack is
//!   instrumented against. [`NoopRecorder`] is a zero-sized type whose
//!   `record` inlines to nothing, so the uninstrumented path pays no
//!   cost; [`ObsRecorder`] routes [`Event`]s into instruments and spans;
//! * [`report`] — live Figure-2-style per-server busy-load tables and
//!   per-stage latency-tail breakdowns;
//! * [`json`] — a minimal dependency-free JSON writer used by snapshot
//!   export and the bench harness.
//!
//! # Determinism rules
//!
//! Recorders observe, they never steer: an instrumented engine produces
//! bit-for-bit the same results, latencies, and offline counters as the
//! uninstrumented one (`tests/observability.rs` at the workspace root
//! pins this for the no-op recorder, sequential and parallel). All
//! events are emitted from the *coordinating* thread in deterministic
//! order — per-shard service in task order, exactly like the gather
//! path — so a sequential engine and its parallel twin emit identical
//! event streams and their snapshots agree exactly. Under concurrent
//! *clients*, counters and bucket counts remain exact; only float
//! accumulations (`sum`, busy-µs gauges) may differ across interleavings
//! by rounding, the same caveat the offline busy-time accounting has.

pub mod instrument;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod span;

pub use instrument::{Counter, Gauge, Histogram};
pub use json::Json;
pub use recorder::{Event, NoopRecorder, ObsConfig, ObsRecorder, Outcome, Recorder, SiteOutcome};
pub use registry::{InstrumentSnapshot, Registry, Snapshot};
pub use span::{Span, SpanEvent, SpanRecorder, Stage};
