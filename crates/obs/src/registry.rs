//! A registry of named instruments and its exportable snapshot.
//!
//! Registration is get-or-create under a mutex; the returned `Arc`
//! handle is then lock-free to mutate, so hot-path code registers once
//! at construction time and never touches the registry lock while
//! serving. Names are dotted paths (`engine.latency_us`,
//! `shard.003.busy_us`); snapshots sort them so text and JSON exports
//! are deterministic.

use crate::instrument::{Counter, Gauge, Histogram};
use crate::json::Json;
use dwr_sim::stats::Percentiles;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named set of instruments.
#[derive(Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.instruments.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("Registry").field("instruments", &n).finish()
    }
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("instrument {name:?} is not a counter"),
        }
    }

    /// Get or register the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("instrument {name:?} is not a gauge"),
        }
    }

    /// Get or register the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("instrument {name:?} is not a histogram"),
        }
    }

    /// A point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock();
        let entries = map
            .iter()
            .map(|(name, inst)| {
                let snap = match inst {
                    Instrument::Counter(c) => InstrumentSnapshot::Counter(c.get()),
                    Instrument::Gauge(g) => InstrumentSnapshot::Gauge(g.get()),
                    Instrument::Histogram(h) => InstrumentSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), snap)
            })
            .collect();
        Snapshot { entries }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Instrument>> {
        // Instruments are plain atomics, so a panicked holder left the map
        // itself intact; recover the guard like the query tier's locks do.
        self.instruments.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The exported value of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrumentSnapshot {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(f64),
    /// A histogram's mergeable summary.
    Histogram(Percentiles),
}

/// A point-in-time export of a whole registry, sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    entries: Vec<(String, InstrumentSnapshot)>,
}

impl Snapshot {
    /// All `(name, value)` entries, sorted by name.
    pub fn entries(&self) -> &[(String, InstrumentSnapshot)] {
        &self.entries
    }

    /// The value of counter `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            InstrumentSnapshot::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            InstrumentSnapshot::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The summary of histogram `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Percentiles> {
        match self.get(name)? {
            InstrumentSnapshot::Histogram(p) => Some(p),
            _ => None,
        }
    }

    fn get(&self, name: &str) -> Option<&InstrumentSnapshot> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The change from `earlier` to `self`: the interval-report
    /// primitive, so a long-lived run can print per-window activity
    /// without ever resetting the live instruments.
    ///
    /// Per kind:
    /// * **counters** subtract (saturating, so a misordered pair yields
    ///   0 instead of wrapping);
    /// * **gauges** are levels, not flows — the delta carries the later
    ///   value unchanged;
    /// * **histograms** subtract bucket-wise (occupancy, count, and sum
    ///   are all monotone), while `min`/`max` carry the later summary's
    ///   cumulative extremes — merging consecutive window deltas
    ///   therefore reproduces the final cumulative summary exactly
    ///   (bucket occupancy and count bitwise; `sum` up to float
    ///   rounding).
    ///
    /// Instruments registered after `earlier` was taken appear with
    /// their full value; `earlier`-only instruments cannot occur (a
    /// registry never unregisters) and are ignored.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, later)| {
                let d = match (later, earlier.get(name)) {
                    (InstrumentSnapshot::Counter(v), Some(InstrumentSnapshot::Counter(e))) => {
                        InstrumentSnapshot::Counter(v.saturating_sub(*e))
                    }
                    (InstrumentSnapshot::Histogram(p), Some(InstrumentSnapshot::Histogram(q))) => {
                        let buckets: Vec<u64> = p
                            .buckets()
                            .iter()
                            .zip(q.buckets())
                            .map(|(a, b)| a.saturating_sub(*b))
                            .collect();
                        let count = buckets.iter().sum();
                        InstrumentSnapshot::Histogram(Percentiles::from_parts(
                            buckets,
                            count,
                            p.sum() - q.sum(),
                            p.min(),
                            p.max(),
                        ))
                    }
                    // Gauges, newly registered instruments, and
                    // kind-mismatched pairs (impossible in one registry)
                    // pass through.
                    (other, _) => other.clone(),
                };
                (name.clone(), d)
            })
            .collect();
        Snapshot { entries }
    }

    /// Render as an aligned text table (one instrument per line).
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, snap) in &self.entries {
            out.push_str(&format!("{name:<width$}  "));
            match snap {
                InstrumentSnapshot::Counter(v) => out.push_str(&format!("counter {v}")),
                InstrumentSnapshot::Gauge(v) => out.push_str(&format!("gauge   {v:.3}")),
                InstrumentSnapshot::Histogram(p) if p.is_empty() => {
                    out.push_str("hist    (empty)");
                }
                InstrumentSnapshot::Histogram(p) => out.push_str(&format!(
                    "hist    n={} mean={:.1} p50={:.1} p90={:.1} p99={:.1} p999={:.1} max={:.1}",
                    p.count(),
                    p.mean(),
                    p.p50(),
                    p.p90(),
                    p.p99(),
                    p.p999(),
                    p.max()
                )),
            }
            out.push('\n');
        }
        out
    }

    /// Render as a JSON object keyed by instrument name.
    pub fn to_json(&self) -> Json {
        let pairs = self
            .entries
            .iter()
            .map(|(name, snap)| {
                let val = match snap {
                    InstrumentSnapshot::Counter(v) => {
                        Json::obj([("kind", Json::from("counter")), ("value", Json::from(*v))])
                    }
                    InstrumentSnapshot::Gauge(v) => {
                        Json::obj([("kind", Json::from("gauge")), ("value", Json::from(*v))])
                    }
                    InstrumentSnapshot::Histogram(p) => Json::obj([
                        ("kind", Json::from("histogram")),
                        ("count", Json::from(p.count())),
                        ("sum", Json::from(p.sum())),
                        ("min", Json::from(p.min())),
                        ("max", Json::from(p.max())),
                        ("mean", Json::from(p.mean())),
                        ("p50", Json::from(p.p50())),
                        ("p90", Json::from(p.p90())),
                        ("p99", Json::from(p.p99())),
                        ("p999", Json::from(p.p999())),
                    ]),
                };
                (name.clone(), val)
            })
            .collect();
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
        r.gauge("g").set(1.5);
        r.histogram("h").record(10.0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.gauge("g"), Some(1.5));
        assert_eq!(snap.histogram("h").map(|p| p.count()), Some(1));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.counter("g"), None, "kind-mismatched lookup is None");
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    fn delta_subtracts_counters_and_histograms_keeps_gauges() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.gauge("g").set(1.0);
        r.histogram("h").record(10.0);
        let s0 = r.snapshot();
        r.counter("c").add(4);
        r.gauge("g").set(7.5);
        r.histogram("h").record(20.0);
        r.histogram("h").record(30.0);
        let s1 = r.snapshot();
        let d = s1.delta(&s0);
        assert_eq!(d.counter("c"), Some(4));
        assert_eq!(d.gauge("g"), Some(7.5), "gauges are levels: delta carries the later value");
        let h = d.histogram("h").expect("histogram present");
        assert_eq!(h.count(), 2, "only the window's observations");
        assert!((h.sum() - 50.0).abs() < 1e-9);
        // Instruments born inside the window report their full value.
        r.counter("new").add(9);
        let s2 = r.snapshot();
        assert_eq!(s2.delta(&s1).counter("new"), Some(9));
        // A self-delta is all-zero (and gauges keep their level).
        let z = s2.delta(&s2);
        assert_eq!(z.counter("c"), Some(0));
        assert_eq!(z.histogram("h").map(|p| p.count()), Some(0));
        assert_eq!(z.gauge("g"), Some(7.5));
    }

    #[test]
    fn window_deltas_sum_back_to_the_final_snapshot() {
        let r = Registry::new();
        let snaps_and_deltas = {
            let mut snaps = vec![r.snapshot()];
            for w in 0..4u64 {
                r.counter("c").add(w + 1);
                r.gauge("g").set(w as f64);
                for i in 0..=w {
                    r.histogram("h").record((1 + i + 10 * w) as f64);
                }
                snaps.push(r.snapshot());
            }
            let deltas: Vec<Snapshot> =
                snaps.windows(2).map(|pair| pair[1].delta(&pair[0])).collect();
            (snaps, deltas)
        };
        let (snaps, deltas) = snaps_and_deltas;
        let fin = snaps.last().unwrap();
        // Counters: the window deltas sum back to the final value.
        let c_sum: u64 = deltas.iter().map(|d| d.counter("c").unwrap()).sum();
        assert_eq!(Some(c_sum), fin.counter("c"));
        // Histograms: counts and bucket occupancy sum back bitwise;
        // sums up to float rounding; merging the deltas reproduces the
        // final cumulative summary including min/max.
        let mut merged = Percentiles::new();
        for d in &deltas {
            merged.merge(d.histogram("h").unwrap());
        }
        let final_h = fin.histogram("h").unwrap();
        assert_eq!(merged.count(), final_h.count());
        assert_eq!(merged.buckets(), final_h.buckets());
        assert_eq!(merged.min(), final_h.min());
        assert_eq!(merged.max(), final_h.max());
        assert!((merged.sum() - final_h.sum()).abs() < 1e-9);
        // Gauges: the last window's delta is the final level.
        assert_eq!(deltas.last().unwrap().gauge("g"), fin.gauge("g"));
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let r = Registry::new();
        r.counter("b.count").inc();
        r.gauge("a.load").set(0.25);
        r.histogram("c.lat");
        let snap = r.snapshot();
        let names: Vec<_> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.load", "b.count", "c.lat"]);
        let text = snap.to_text();
        assert!(text.contains("a.load"), "{text}");
        assert!(text.contains("counter 1"), "{text}");
        assert!(text.contains("(empty)"), "{text}");
        let json = snap.to_json().render();
        assert!(json.starts_with('{') && json.contains("\"b.count\""), "{json}");
    }
}
