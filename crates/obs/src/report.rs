//! Live load reports: Figure-2-style per-server busy load and per-stage
//! latency-tail breakdowns, rendered from instruments instead of offline
//! bookkeeping.

use dwr_sim::stats::Percentiles;

/// A proportional ASCII bar of `frac` (clamped to [0, 1]) in `width`
/// cells.
fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// The Figure 2 table from live per-shard busy gauges: busy time per
/// server, load normalized by the mean (dashed line at 1.00), and the
/// peak/mean ratio the paper's capacity argument hinges on.
pub fn busy_load_report(busy_us: &[f64]) -> String {
    if busy_us.is_empty() {
        return "  (no servers)\n".to_string();
    }
    let mean = busy_us.iter().sum::<f64>() / busy_us.len() as f64;
    let peak = busy_us.iter().cloned().fold(0.0_f64, f64::max);
    let mut out = String::new();
    out.push_str("  server   busy_ms      load\n");
    for (i, &b) in busy_us.iter().enumerate() {
        let load = if mean > 0.0 { b / mean } else { 0.0 };
        let frac = if peak > 0.0 { b / peak } else { 0.0 };
        out.push_str(&format!("  {i:>6}  {:>8.1}  {load:>8.3}  {}\n", b / 1_000.0, bar(frac, 30)));
    }
    let ratio = if mean > 0.0 { peak / mean } else { 0.0 };
    out.push_str(&format!(
        "    mean  {:>8.1}      1.000  (peak/mean {ratio:.3}: the busiest server bounds capacity)\n",
        mean / 1_000.0
    ));
    out
}

/// A per-stage latency-tail table from histogram snapshots: one row per
/// named stage with count, mean, and the p50/p90/p99/p999 tail.
pub fn stage_tail_report<'a>(stages: &[(&'a str, &'a Percentiles)]) -> String {
    let width = stages.iter().map(|(n, _)| n.len()).max().unwrap_or(5).max(5);
    let mut out = format!(
        "  {:<width$}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
        "stage", "n", "mean_us", "p50_us", "p90_us", "p99_us", "p999_us", "max_us"
    );
    for (name, p) in stages {
        if p.is_empty() {
            out.push_str(&format!("  {name:<width$}  {:>9}  (no samples)\n", 0));
            continue;
        }
        out.push_str(&format!(
            "  {name:<width$}  {:>9}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}\n",
            p.count(),
            p.mean(),
            p.p50(),
            p.p90(),
            p.p99(),
            p.p999(),
            p.max()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_report_shows_loads_and_ratio() {
        let r = busy_load_report(&[1_000.0, 3_000.0]);
        assert!(r.contains("0.500"), "{r}");
        assert!(r.contains("1.500"), "{r}");
        assert!(r.contains("peak/mean 1.500"), "{r}");
    }

    #[test]
    fn busy_report_handles_empty_and_idle() {
        assert!(busy_load_report(&[]).contains("no servers"));
        let idle = busy_load_report(&[0.0, 0.0]);
        assert!(idle.contains("0.000"), "{idle}");
    }

    #[test]
    fn stage_report_renders_rows() {
        let mut p = Percentiles::new();
        for i in 1..=100u64 {
            p.push(i as f64);
        }
        let empty = Percentiles::new();
        let r = stage_tail_report(&[("shard_service", &p), ("hedge", &empty)]);
        assert!(r.contains("shard_service"), "{r}");
        assert!(r.contains("100"), "{r}");
        assert!(r.contains("(no samples)"), "{r}");
    }
}
