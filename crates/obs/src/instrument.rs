//! Lock-free instruments: counters, gauges, and log-bucketed histograms.
//!
//! Every mutation is a single atomic RMW (or a short CAS loop for the
//! float cells), so instruments can sit on the hot serving path and be
//! hammered from any number of threads without a lock. Reads are
//! monotone snapshots: a concurrent reader may observe a value between
//! two writes, never a torn one.

use dwr_sim::stats::{log_bucket_index, Percentiles, LOG_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A float-valued cell supporting `set` and lock-free `add` (f64 bits in
/// an atomic word, the same technique as the broker's busy-time cells).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Create a gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }

    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Accumulate into the value (CAS loop; lock-free).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A lock-free log-bucketed histogram: atomic bucket counts in the
/// shared `dwr_sim::stats` layout (8 sub-buckets per octave), exact
/// min/max/count, and a mergeable [`Percentiles`] snapshot for
/// p50/p90/p99/p999 readouts.
///
/// `record` is wait-free except for the min/max CAS loops, which only
/// retry while the extremes are actually moving.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bits; float accumulation, so merge order affects rounding only.
    sum: AtomicU64,
    /// f64 bits, starts at +inf.
    min: AtomicU64,
    /// f64 bits, starts at -inf.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..LOG_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0.0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one observation.
    pub fn record(&self, x: f64) {
        self.buckets[log_bucket_index(x)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        add_f64(&self.sum, x);
        update_extreme(&self.min, x, |cand, cur| cand < cur);
        update_extreme(&self.max, x, |cand, cur| cand > cur);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Fold another histogram's current contents into this one
    /// (cross-thread aggregation: per-shard histograms merge in task
    /// order for deterministic totals).
    pub fn merge(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(&other.buckets) {
            b.fetch_add(o.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        add_f64(&self.sum, f64::from_bits(other.sum.load(Ordering::Relaxed)));
        update_extreme(&self.min, f64::from_bits(other.min.load(Ordering::Relaxed)), |c, v| c < v);
        update_extreme(&self.max, f64::from_bits(other.max.load(Ordering::Relaxed)), |c, v| c > v);
    }

    /// A plain mergeable summary of the current contents — the bridge to
    /// `dwr_sim::stats::Percentiles` and its quantile arithmetic.
    ///
    /// Taken while writers are active, the snapshot reflects some valid
    /// prefix of each cell's history (fields are read independently); the
    /// experiment harnesses snapshot quiescent recorders.
    pub fn snapshot(&self) -> Percentiles {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum::<u64>();
        Percentiles::from_parts(
            buckets,
            count,
            f64::from_bits(self.sum.load(Ordering::Relaxed)),
            f64::from_bits(self.min.load(Ordering::Relaxed)),
            f64::from_bits(self.max.load(Ordering::Relaxed)),
        )
    }
}

fn add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn update_extreme(cell: &AtomicU64, cand: f64, wins: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    while wins(cand, f64::from_bits(cur)) {
        match cell.compare_exchange_weak(cur, cand.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_accumulate() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(1.5);
        g.add(2.5);
        assert_eq!(g.get(), 4.0);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn histogram_snapshot_matches_plain_percentiles() {
        let h = Histogram::new();
        let mut p = Percentiles::new();
        for i in 1..=5_000u64 {
            let x = (i as f64).sqrt() * 3.0;
            h.record(x);
            p.push(x);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets(), p.buckets());
        assert_eq!(s.count(), p.count());
        assert_eq!(s.min(), p.min());
        assert_eq!(s.max(), p.max());
        for q in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(s.percentile(q), p.percentile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for i in 0..2_000u64 {
            let x = 1.0 + (i % 331) as f64;
            whole.record(x);
            if i % 3 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        let (sa, sw) = (a.snapshot(), whole.snapshot());
        assert_eq!(sa.buckets(), sw.buckets());
        assert_eq!(sa.count(), sw.count());
        assert_eq!(sa.min(), sw.min());
        assert_eq!(sa.max(), sw.max());
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let h = Histogram::new();
        h.record(7.0);
        let before = h.snapshot();
        h.merge(&Histogram::new());
        assert_eq!(h.snapshot(), before, "empty min/max must not clobber extremes");
    }

    #[test]
    fn histogram_is_exact_under_concurrent_writers() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record((t * 10_000 + i) as f64 + 1.0);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 40_000);
        assert_eq!(snap.min(), 1.0);
        assert_eq!(snap.max(), 40_000.0);
        assert!((snap.sum() - (40_000.0 * 40_001.0 / 2.0)).abs() < 1e-3);
    }
}
