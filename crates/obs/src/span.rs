//! Sampled per-query span tracing.
//!
//! A [`Span`] is the stage-by-stage story of one query — broker admit,
//! cache lookup, scatter dispatch, per-shard service, gather,
//! hedge/failover attempts, WAN hops — each stamped with the
//! deterministic sim clock. The [`SpanRecorder`] samples 1 query in `N`
//! (deterministically, by admission ordinal, so reruns trace the same
//! queries) and keeps the last `capacity` finished spans in a ring.
//!
//! Unlike the metric instruments, spans go through a mutex: they are
//! sampled (most queries never touch the lock beyond one counter
//! increment) and variable-length, so a lock-free design buys nothing.

use dwr_sim::SimTime;
use std::collections::VecDeque;
use std::sync::Mutex;

/// A stage marker inside one query's span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Query admitted by the serving tier.
    Admit,
    /// Result-cache lookup; `value_us` is 1.0 on a hit, 0.0 on a miss.
    CacheLookup,
    /// Scatter across partitions; `value_us` is the partition count.
    ScatterDispatch,
    /// One partition serviced; `value_us` is its service time in µs.
    ShardService,
    /// All partitions gathered; `value_us` is the query latency in µs.
    Gather,
    /// A hedged retry fired; `value_us` is the extra service µs charged.
    Hedge,
    /// A site attempt began; `value_us` is the site id.
    SiteAttempt,
    /// A site failed over; `value_us` is the backoff charged in µs.
    SiteFailover,
    /// A WAN hop; `value_us` is the round-trip charged in µs.
    WanHop,
    /// Terminal outcome; `value_us` is the total latency in µs (0 if the
    /// query never completed).
    Outcome,
}

impl Stage {
    fn label(self) -> &'static str {
        match self {
            Stage::Admit => "admit",
            Stage::CacheLookup => "cache_lookup",
            Stage::ScatterDispatch => "scatter",
            Stage::ShardService => "shard_service",
            Stage::Gather => "gather",
            Stage::Hedge => "hedge",
            Stage::SiteAttempt => "site_attempt",
            Stage::SiteFailover => "site_failover",
            Stage::WanHop => "wan_hop",
            Stage::Outcome => "outcome",
        }
    }
}

/// One timestamped stage inside a span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Sim-clock timestamp the stage was recorded at.
    pub at: SimTime,
    /// Stage kind.
    pub stage: Stage,
    /// Stage payload (see [`Stage`] per-variant docs).
    pub value_us: f64,
}

/// The recorded trace of one sampled query.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Query key (`dwr_query` term-set hash).
    pub qid: u64,
    /// Admission ordinal (1-based) across all queries, sampled or not.
    pub ordinal: u64,
    /// Stages in emission order.
    pub events: Vec<SpanEvent>,
}

impl Span {
    /// Render as an indented multi-line trace for experiment output.
    pub fn render(&self) -> String {
        let mut out = format!("span qid={:016x} (query #{})\n", self.qid, self.ordinal);
        let t0 = self.events.first().map_or(0, |e| e.at);
        for e in &self.events {
            out.push_str(&format!(
                "  +{:>8}us  {:<13} {:.1}\n",
                e.at.saturating_sub(t0),
                e.stage.label(),
                e.value_us
            ));
        }
        out
    }
}

#[derive(Debug, Default)]
struct SpanState {
    /// Spans still accumulating events, keyed by qid (small: one per
    /// in-flight sampled query).
    open: Vec<Span>,
    /// Finished spans, oldest first, bounded by `capacity`.
    ring: VecDeque<Span>,
    /// Total queries entered (sampled or not); drives deterministic
    /// 1-in-N selection.
    started: u64,
}

/// A fixed-capacity recorder of sampled query spans.
#[derive(Debug)]
pub struct SpanRecorder {
    /// Sample 1 query in this many; 0 disables tracing entirely.
    sample_every: u64,
    /// Finished spans retained.
    capacity: usize,
    state: Mutex<SpanState>,
}

/// Open spans tolerated before the oldest is force-closed — a leak guard
/// for queries that never reach a terminal event.
const MAX_OPEN: usize = 32;

impl SpanRecorder {
    /// Trace 1 query in `sample_every` (0 = never), keeping the last
    /// `capacity` finished spans.
    pub fn new(sample_every: u64, capacity: usize) -> Self {
        SpanRecorder { sample_every, capacity, state: Mutex::new(SpanState::default()) }
    }

    /// A query was admitted: count it, and open a span if it is sampled.
    /// If `qid` already has an open span (a multi-site retry re-entering
    /// a site engine), append to it instead of double-counting.
    pub fn enter(&self, qid: u64, at: SimTime, stage: Stage, value_us: f64) {
        if self.sample_every == 0 {
            return;
        }
        let mut st = self.lock();
        if let Some(span) = st.open.iter_mut().find(|s| s.qid == qid) {
            span.events.push(SpanEvent { at, stage, value_us });
            return;
        }
        st.started += 1;
        if !(st.started - 1).is_multiple_of(self.sample_every) {
            return;
        }
        let ordinal = st.started;
        if st.open.len() >= MAX_OPEN {
            let orphan = st.open.remove(0);
            self.finish(&mut st, orphan);
        }
        st.open.push(Span { qid, ordinal, events: vec![SpanEvent { at, stage, value_us }] });
    }

    /// Append a stage to `qid`'s span, if one is open (non-sampled
    /// queries fall through for free).
    pub fn touch(&self, qid: u64, at: SimTime, stage: Stage, value_us: f64) {
        if self.sample_every == 0 {
            return;
        }
        let mut st = self.lock();
        if let Some(span) = st.open.iter_mut().find(|s| s.qid == qid) {
            span.events.push(SpanEvent { at, stage, value_us });
        }
    }

    /// Terminal stage: append it and move the span to the finished ring.
    pub fn close(&self, qid: u64, at: SimTime, stage: Stage, value_us: f64) {
        if self.sample_every == 0 {
            return;
        }
        let mut st = self.lock();
        if let Some(pos) = st.open.iter().position(|s| s.qid == qid) {
            let mut span = st.open.remove(pos);
            span.events.push(SpanEvent { at, stage, value_us });
            self.finish(&mut st, span);
        }
    }

    /// Finished spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Total queries counted (sampled or not).
    pub fn queries_seen(&self) -> u64 {
        self.lock().started
    }

    fn finish(&self, st: &mut SpanState, span: Span) {
        if self.capacity == 0 {
            return;
        }
        if st.ring.len() >= self.capacity {
            st.ring.pop_front();
        }
        st.ring.push_back(span);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SpanState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_one_in_n_deterministically() {
        let rec = SpanRecorder::new(3, 16);
        for q in 0..9u64 {
            rec.enter(q, q * 10, Stage::Admit, 0.0);
            rec.close(q, q * 10 + 5, Stage::Outcome, 5.0);
        }
        let spans = rec.spans();
        let sampled: Vec<_> = spans.iter().map(|s| s.qid).collect();
        assert_eq!(sampled, [0, 3, 6], "queries 1,4,7... by ordinal");
        assert_eq!(rec.queries_seen(), 9);
    }

    #[test]
    fn touch_on_unsampled_query_is_a_noop() {
        let rec = SpanRecorder::new(2, 16);
        rec.enter(1, 0, Stage::Admit, 0.0); // sampled (ordinal 1)
        rec.enter(2, 1, Stage::Admit, 0.0); // not sampled
        rec.touch(2, 2, Stage::Gather, 9.0);
        rec.close(2, 3, Stage::Outcome, 9.0);
        rec.touch(1, 4, Stage::Gather, 7.0);
        rec.close(1, 5, Stage::Outcome, 7.0);
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].qid, 1);
        assert_eq!(spans[0].events.len(), 3);
    }

    #[test]
    fn ring_keeps_only_the_newest_spans() {
        let rec = SpanRecorder::new(1, 2);
        for q in 0..5u64 {
            rec.enter(q, q, Stage::Admit, 0.0);
            rec.close(q, q, Stage::Outcome, 0.0);
        }
        let qids: Vec<_> = rec.spans().iter().map(|s| s.qid).collect();
        assert_eq!(qids, [3, 4]);
    }

    #[test]
    fn reentry_appends_instead_of_recounting() {
        let rec = SpanRecorder::new(1, 4);
        rec.enter(7, 0, Stage::Admit, 0.0);
        rec.enter(7, 10, Stage::Admit, 0.0); // failover retry re-enters the same query
        rec.close(7, 20, Stage::Outcome, 20.0);
        assert_eq!(rec.queries_seen(), 1);
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].events.len(), 3);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = SpanRecorder::new(0, 8);
        rec.enter(1, 0, Stage::Admit, 0.0);
        rec.close(1, 1, Stage::Outcome, 1.0);
        assert!(rec.spans().is_empty());
        assert_eq!(rec.queries_seen(), 0);
    }

    #[test]
    fn render_is_relative_to_first_event() {
        let rec = SpanRecorder::new(1, 1);
        rec.enter(0xabc, 100, Stage::Admit, 0.0);
        rec.touch(0xabc, 150, Stage::ShardService, 42.5);
        rec.close(0xabc, 200, Stage::Outcome, 100.0);
        let text = rec.spans()[0].render();
        assert!(text.contains("+       0us  admit"), "{text}");
        assert!(text.contains("+      50us  shard_service 42.5"), "{text}");
        assert!(text.contains("+     100us  outcome"), "{text}");
    }
}
