//! The [`Recorder`] trait the serving stack is instrumented against,
//! its zero-cost no-op, and the live [`ObsRecorder`].
//!
//! The serving crates (`dwr-query`) are generic over `R: Recorder` with
//! `R = NoopRecorder` as the default type parameter, so existing call
//! sites compile unchanged and pay nothing: [`NoopRecorder::record`] is
//! an inlined empty body on a zero-sized type, and event *construction*
//! feeding it is dead code the optimizer removes
//! (`exp_observability` pins this with a timing assert, and
//! `tests/observability.rs` pins that results stay bit-for-bit
//! identical).
//!
//! [`ObsRecorder`] is the live implementation: it routes every
//! [`Event`] into lock-free instruments in a [`Registry`] plus a sampled
//! [`SpanRecorder`]. Events are emitted by the *coordinating* thread of
//! each query in deterministic order (see the crate docs), so metric
//! streams agree between sequential and parallel engines.

use crate::instrument::{Counter, Gauge, Histogram};
use crate::registry::{Registry, Snapshot};
use crate::span::{Span, SpanRecorder, Stage};
use dwr_sim::SimTime;
use std::sync::Arc;

/// How a single-site engine answered a query (mirror of
/// `dwr_query::engine::Served`, payload-free for `Copy` events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Fresh results straight from the cache.
    CacheHit,
    /// Evaluated on the full chosen partition set.
    Full,
    /// Evaluated with some partitions unavailable.
    Degraded,
    /// Served stale results from the cache during an outage.
    StaleFromCache,
    /// Backend unavailable and the cache had nothing.
    Failed,
    /// Refused by admission control.
    Shed,
    /// Returned partial top-k at the gather deadline (some dispatched
    /// partitions answered too late to merge).
    Partial,
    /// Evaluated on a routed subset of the active partitions: every
    /// contacted partition answered, but the router deliberately skipped
    /// the rest, so recall is bounded by the selector, not proven.
    Routed,
}

/// How the site tier resolved a query (mirror of the
/// `dwr_query::multisite::MultiSiteStats` buckets: every query lands in
/// exactly one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteOutcome {
    /// Served by the query's nearest (anchor) site.
    ServedLocal,
    /// Served by a remote site after failover or spill.
    ServedRemote,
    /// Every live site was over its admission threshold.
    ShedOverload,
    /// Deadline or attempt cap exhausted while live sites remained.
    ShedDeadline,
    /// No site was live at dispatch time.
    Failed,
}

/// One instrumentation point on the serving path. All variants carry the
/// query key (`qid`) and the sim-clock instant (`now`); everything is
/// `Copy`, so constructing an event for the no-op recorder costs nothing
/// after inlining.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A single-site engine admitted a query.
    QueryStart {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
    },
    /// The result cache was consulted.
    CacheLookup {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Whether the lookup hit.
        hit: bool,
    },
    /// The broker scattered the query across partitions.
    ScatterDispatch {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Partitions dispatched to.
        partitions: u32,
    },
    /// One partition finished service (emitted by the gather loop in
    /// partition order — identical for sequential and parallel scatter).
    ShardService {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Partition id.
        partition: u32,
        /// Simulated service time, µs.
        service_us: f64,
    },
    /// The gather phase merged all partition results.
    GatherDone {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Hits received across partitions before top-k.
        merged_hits: u64,
        /// Simulated backend latency (slowest partition + merge), µs.
        latency_us: SimTime,
    },
    /// A hedged retry was dispatched after a replica died mid-query.
    Hedge {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Partition hedged.
        partition: u32,
        /// Extra service time the retry spent, µs.
        extra_us: f64,
    },
    /// Terminal single-site outcome (exactly one per engine query).
    Outcome {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// How the query was answered.
        outcome: Outcome,
        /// Simulated latency for backend-evaluated answers.
        latency_us: Option<SimTime>,
    },
    /// The site tier dispatched an attempt to a site.
    SiteAttempt {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Site attempted.
        site: u32,
        /// Whether the site is remote to the query's anchor.
        remote: bool,
    },
    /// A site attempt was lost and the query failed over.
    SiteFailover {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Site whose attempt was lost.
        site: u32,
        /// Backoff charged for this loss, µs.
        backoff_us: SimTime,
    },
    /// The query crossed the WAN to a remote site.
    WanHop {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Anchor site.
        from: u32,
        /// Remote site.
        to: u32,
        /// WAN round trip charged, µs.
        rtt_us: SimTime,
    },
    /// Terminal site-tier outcome (exactly one per site-tier query).
    SiteOutcome {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Which accounting bucket the query landed in.
        outcome: SiteOutcome,
        /// Serving site, when one answered.
        site: Option<u32>,
        /// WAN hops taken.
        hops: u32,
        /// Whether the served answer was degraded/stale.
        degraded: bool,
        /// WAN + backoff latency added on top of backend service, µs
        /// (0 for unserved queries — matching `MultiSiteStats`).
        added_latency_us: SimTime,
        /// End-to-end simulated latency, when served.
        latency_us: Option<SimTime>,
    },
    /// A crawling agent crashed and left the pool.
    CrawlCrash {
        /// Crashed agent (crawl-tier index, not a query id).
        agent: u32,
        /// Sim-clock instant.
        now: SimTime,
        /// Fetches that were in flight on the agent and are charged as
        /// lost work.
        lost_inflight: u64,
    },
    /// A crawling agent recovered and rejoined the pool.
    CrawlRecover {
        /// Recovered agent.
        agent: u32,
        /// Sim-clock instant.
        now: SimTime,
    },
    /// A membership change re-routed hosts to their new owners.
    CrawlReassign {
        /// Sim-clock instant.
        now: SimTime,
        /// Hosts whose owning agent changed in this membership event.
        hosts_moved: u64,
    },
    /// One frontier-handoff batch was delivered to a new host owner.
    CrawlHandoff {
        /// Receiving agent.
        to: u32,
        /// Sim-clock instant.
        now: SimTime,
        /// Hosts whose queues the batch carried.
        hosts: u64,
        /// Unfetched URLs migrated (politeness state rides along).
        urls: u64,
    },
    /// A page lost in a crash was fetched again by another agent.
    CrawlRefetch {
        /// Agent that re-fetched the page.
        agent: u32,
        /// Sim-clock instant.
        now: SimTime,
    },
    /// An online repartition split committed: the parent partition closed
    /// and its children became active in a new epoch. Carries no query
    /// key — splits are index-tier events, like the crawl family.
    RepartSplit {
        /// Sim-clock instant.
        now: SimTime,
        /// Partition that was subdivided (now closed).
        parent: u32,
        /// Children created by the split.
        children: u32,
        /// Live epoch after the publish.
        epoch: u64,
    },
    /// An online repartition split aborted before publish (a crash-
    /// before-publish fate, or no live replica to build the children):
    /// the parent epoch stayed live, nothing changed for readers.
    RepartAbort {
        /// Sim-clock instant.
        now: SimTime,
        /// Partition whose split was abandoned.
        parent: u32,
        /// Epoch that stayed live.
        epoch: u64,
    },
    /// A shard router resolved one cold query: how many shards it
    /// contacted out of the epoch's active set, how often the fallback
    /// cascade broadened the contact set, and how full the returned
    /// top-k was (a cheap online recall proxy — lost shards surface as
    /// missing hits).
    RouteServed {
        /// Query key.
        qid: u64,
        /// Sim-clock instant.
        now: SimTime,
        /// Distinct shards the router contacted for this query.
        contacted: u32,
        /// Active partitions in the query's epoch snapshot.
        active: u32,
        /// Fallback-cascade rounds beyond the initial top-*t* contact.
        broadenings: u32,
        /// Hits returned.
        hits: u32,
        /// Hits requested.
        k: u32,
    },
    /// A router built (or inherited) the selector profile for one epoch
    /// of the live index. Carries no query key — profiles are index-tier
    /// state, like the repart family.
    RouteProfile {
        /// Sim-clock instant.
        now: SimTime,
        /// Epoch the profile snapshot serves.
        epoch: u64,
        /// Profile generation (bumped by drift retrains).
        generation: u64,
    },
    /// The drift detector refreshed the router's training profiles: all
    /// epoch snapshots of the previous generation were discarded.
    RouteRetrain {
        /// Sim-clock instant.
        now: SimTime,
        /// Profile generation now in force.
        generation: u64,
    },
}

/// An observability sink for serving-path [`Event`]s.
///
/// Implementations must be cheap and must never influence serving
/// behaviour: recorders observe, they never steer.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Record one event.
    fn record(&self, event: Event);

    /// Whether recording is active. Instrumented code may use this to
    /// skip *preparing* data that only a live recorder would consume
    /// (e.g. computing a query key outside the serving path proper).
    #[inline]
    fn is_live(&self) -> bool {
        true
    }
}

/// The zero-cost default: a zero-sized recorder whose `record` inlines
/// to an empty body, so instrumented code compiles to exactly the
/// uninstrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn record(&self, _event: Event) {}

    #[inline(always)]
    fn is_live(&self) -> bool {
        false
    }
}

impl<R: Recorder + ?Sized> Recorder for Arc<R> {
    #[inline]
    fn record(&self, event: Event) {
        (**self).record(event);
    }

    #[inline]
    fn is_live(&self) -> bool {
        (**self).is_live()
    }
}

/// Shape of the serving stack an [`ObsRecorder`] instruments.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Partitions per engine (sizes the per-shard gauges/counters).
    pub partitions: usize,
    /// Sites in the tier; 0 for a single-site engine. Nonzero switches
    /// the span protocol: spans open on [`Event::SiteAttempt`] and close
    /// on [`Event::SiteOutcome`] instead of `QueryStart`/`Outcome`.
    pub sites: usize,
    /// Trace 1 query in this many (0 disables span tracing).
    pub span_sample: u64,
    /// Finished spans retained in the ring.
    pub span_capacity: usize,
    /// Register crawl-tier instruments (`crawl.*`). Off for serving-only
    /// stacks so their snapshots are unperturbed.
    pub crawl: bool,
    /// Register online-repartition instruments (`repart.*`). Off for
    /// static-layout stacks so their snapshots are unperturbed.
    pub repart: bool,
    /// Register shard-routing instruments (`route.*`). Off for
    /// exhaustive-fan-out stacks so their snapshots are unperturbed.
    pub route: bool,
}

impl ObsConfig {
    /// Config for one single-site engine with `partitions` shards.
    pub fn single_site(partitions: usize) -> Self {
        ObsConfig {
            partitions,
            sites: 0,
            span_sample: 997,
            span_capacity: 64,
            crawl: false,
            repart: false,
            route: false,
        }
    }

    /// Config for a site tier: `sites` engines of `partitions` shards.
    pub fn multi_site(partitions: usize, sites: usize) -> Self {
        assert!(sites > 0);
        ObsConfig {
            partitions,
            sites,
            span_sample: 997,
            span_capacity: 64,
            crawl: false,
            repart: false,
            route: false,
        }
    }

    /// Config for a crawl tier: no serving instruments beyond the
    /// always-present engine set, plus the `crawl.*` fault counters.
    /// Crawl events carry no query key, so span tracing is disabled.
    pub fn crawl_tier() -> Self {
        ObsConfig {
            partitions: 0,
            sites: 0,
            span_sample: 0,
            span_capacity: 0,
            crawl: true,
            repart: false,
            route: false,
        }
    }

    /// Config for a whole-system soak: one registry carrying every
    /// family at once — the serving instruments of `sites` engines over
    /// `partitions` shard slots (size to the live index's *capacity* so
    /// post-split ids stay in range), plus the `crawl.*`, `repart.*`,
    /// and `route.*` tiers. The families are name-disjoint by prefix,
    /// so composing them shares the always-present engine set and adds
    /// each optional set exactly once (pinned by
    /// `full_system_instrument_names_do_not_collide`).
    pub fn full_system(partitions: usize, sites: usize) -> Self {
        ObsConfig {
            crawl: true,
            repart: true,
            route: true,
            ..ObsConfig::multi_site(partitions, sites)
        }
    }

    /// Override the span sampling rate (1 = every query, 0 = none).
    pub fn sample(mut self, every: u64) -> Self {
        self.span_sample = every;
        self
    }

    /// Register the `repart.*` instruments (size `partitions` to the
    /// live index's *capacity* so post-split shard ids stay in range).
    pub fn with_repart(mut self) -> Self {
        self.repart = true;
        self
    }

    /// Register the `route.*` instruments (shard-routing counters and
    /// histograms).
    pub fn with_route(mut self) -> Self {
        self.route = true;
        self
    }
}

/// Per-site-tier instruments, present only when `sites > 0`.
#[derive(Debug)]
struct SiteInstruments {
    attempts: Arc<Counter>,
    served_local: Arc<Counter>,
    served_remote: Arc<Counter>,
    degraded: Arc<Counter>,
    shed_overload: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    failed: Arc<Counter>,
    failovers: Arc<Counter>,
    /// WAN hops of *served* queries — the `MultiSiteStats` definition.
    wan_hops: Arc<Counter>,
    /// Every hop attempted, served or not.
    wan_hops_attempted: Arc<Counter>,
    added_latency_us: Arc<Counter>,
    latency_us: Arc<Histogram>,
    wan_rtt_us: Arc<Histogram>,
    backoff_us: Arc<Histogram>,
    /// `site.{s:02}.served` per site.
    per_site_served: Vec<Arc<Counter>>,
}

/// Crawl-tier fault instruments, present only when [`ObsConfig::crawl`]
/// is set. Counter names mirror the `CrawlFaultStats` fields so offline
/// stats and live instruments can be cross-checked exactly
/// (`exp_crawl_faults` pins this).
#[derive(Debug)]
struct CrawlInstruments {
    crashes: Arc<Counter>,
    recoveries: Arc<Counter>,
    lost_inflight: Arc<Counter>,
    hosts_moved: Arc<Counter>,
    handoff_batches: Arc<Counter>,
    handoff_urls: Arc<Counter>,
    refetches: Arc<Counter>,
}

/// Online-repartition instruments, present only when
/// [`ObsConfig::repart`] is set. Counter names mirror the
/// `RepartStats` fields so offline stats and live instruments can be
/// cross-checked exactly (`exp_repart` pins this).
#[derive(Debug)]
struct RepartInstruments {
    splits: Arc<Counter>,
    aborts: Arc<Counter>,
    children: Arc<Counter>,
    /// Live epoch as a gauge (set, not added).
    epoch: Arc<Gauge>,
}

/// Shard-routing instruments, present only when [`ObsConfig::route`] is
/// set. Counter names mirror the `RouterStats` fields so offline stats
/// and live instruments can be cross-checked exactly (`exp_selective`
/// pins this).
#[derive(Debug)]
struct RouteInstruments {
    queries: Arc<Counter>,
    shards_contacted: Arc<Counter>,
    broadenings: Arc<Counter>,
    covered: Arc<Counter>,
    profiles: Arc<Counter>,
    retrains: Arc<Counter>,
    contacted_hist: Arc<Histogram>,
    recall_proxy: Arc<Histogram>,
    generation: Arc<Gauge>,
}

/// The live recorder: lock-free instruments in a [`Registry`] plus a
/// sampled [`SpanRecorder`]. Share one per serving stack behind an
/// `Arc` (a site tier's engines must all hold the same instance so the
/// accounting is coherent).
#[derive(Debug)]
pub struct ObsRecorder {
    registry: Registry,
    spans: SpanRecorder,
    multi_site: bool,
    // Hot-path handles, registered once at construction so `record`
    // never takes the registry lock.
    queries: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    out_cache_hit: Arc<Counter>,
    out_full: Arc<Counter>,
    out_degraded: Arc<Counter>,
    out_stale: Arc<Counter>,
    out_failed: Arc<Counter>,
    out_shed: Arc<Counter>,
    out_partial: Arc<Counter>,
    out_routed: Arc<Counter>,
    hedges: Arc<Counter>,
    latency_us: Arc<Histogram>,
    hedge_extra_us: Arc<Histogram>,
    scatter_batches: Arc<Counter>,
    scatter_tasks: Arc<Counter>,
    broker_queries: Arc<Counter>,
    gather_merged_hits: Arc<Counter>,
    gather_latency_us: Arc<Histogram>,
    shard_service_us: Arc<Histogram>,
    /// `shard.{p:03}.busy_us` — accumulated in event order on the
    /// coordinating thread, so it matches `DocBroker::busy_time`
    /// bit-for-bit.
    shard_busy: Vec<Arc<Gauge>>,
    shard_queries: Vec<Arc<Counter>>,
    site: Option<SiteInstruments>,
    crawl: Option<CrawlInstruments>,
    repart: Option<RepartInstruments>,
    route: Option<RouteInstruments>,
}

impl ObsRecorder {
    /// Build a recorder (and its registry of named instruments) for a
    /// stack of the given shape.
    pub fn new(cfg: ObsConfig) -> Self {
        let registry = Registry::new();
        let shard_busy =
            (0..cfg.partitions).map(|p| registry.gauge(&format!("shard.{p:03}.busy_us"))).collect();
        let shard_queries = (0..cfg.partitions)
            .map(|p| registry.counter(&format!("shard.{p:03}.queries")))
            .collect();
        let site = (cfg.sites > 0).then(|| SiteInstruments {
            attempts: registry.counter("site.attempts"),
            served_local: registry.counter("site.served_local"),
            served_remote: registry.counter("site.served_remote"),
            degraded: registry.counter("site.degraded"),
            shed_overload: registry.counter("site.shed_overload"),
            shed_deadline: registry.counter("site.shed_deadline"),
            failed: registry.counter("site.failed"),
            failovers: registry.counter("site.failovers"),
            wan_hops: registry.counter("site.wan_hops"),
            wan_hops_attempted: registry.counter("site.wan_hops_attempted"),
            added_latency_us: registry.counter("site.added_latency_us"),
            latency_us: registry.histogram("site.latency_us"),
            wan_rtt_us: registry.histogram("wan.rtt_us"),
            backoff_us: registry.histogram("site.backoff_us"),
            per_site_served: (0..cfg.sites)
                .map(|s| registry.counter(&format!("site.{s:02}.served")))
                .collect(),
        });
        let crawl = cfg.crawl.then(|| CrawlInstruments {
            crashes: registry.counter("crawl.crashes"),
            recoveries: registry.counter("crawl.recoveries"),
            lost_inflight: registry.counter("crawl.lost_inflight"),
            hosts_moved: registry.counter("crawl.hosts_moved"),
            handoff_batches: registry.counter("crawl.handoff_batches"),
            handoff_urls: registry.counter("crawl.handoff_urls"),
            refetches: registry.counter("crawl.refetches"),
        });
        let repart = cfg.repart.then(|| RepartInstruments {
            splits: registry.counter("repart.splits"),
            aborts: registry.counter("repart.aborts"),
            children: registry.counter("repart.children"),
            epoch: registry.gauge("repart.epoch"),
        });
        let route = cfg.route.then(|| RouteInstruments {
            queries: registry.counter("route.queries"),
            shards_contacted: registry.counter("route.shards_contacted"),
            broadenings: registry.counter("route.broadenings"),
            covered: registry.counter("route.covered"),
            profiles: registry.counter("route.profiles"),
            retrains: registry.counter("route.retrains"),
            contacted_hist: registry.histogram("route.contacted"),
            recall_proxy: registry.histogram("route.recall_proxy_pct"),
            generation: registry.gauge("route.generation"),
        });
        ObsRecorder {
            spans: SpanRecorder::new(cfg.span_sample, cfg.span_capacity),
            multi_site: site.is_some(),
            queries: registry.counter("engine.queries"),
            cache_hits: registry.counter("cache.hits"),
            cache_misses: registry.counter("cache.misses"),
            out_cache_hit: registry.counter("engine.served.cache_hit"),
            out_full: registry.counter("engine.served.full"),
            out_degraded: registry.counter("engine.served.degraded"),
            out_stale: registry.counter("engine.served.stale"),
            out_failed: registry.counter("engine.served.failed"),
            out_shed: registry.counter("engine.served.shed"),
            out_partial: registry.counter("engine.served.partial"),
            out_routed: registry.counter("engine.served.routed"),
            hedges: registry.counter("engine.hedges"),
            latency_us: registry.histogram("engine.latency_us"),
            hedge_extra_us: registry.histogram("engine.hedge_extra_us"),
            scatter_batches: registry.counter("scatter.batches"),
            scatter_tasks: registry.counter("scatter.tasks"),
            broker_queries: registry.counter("broker.queries"),
            gather_merged_hits: registry.counter("gather.merged_hits"),
            gather_latency_us: registry.histogram("gather.latency_us"),
            shard_service_us: registry.histogram("shard.service_us"),
            shard_busy,
            shard_queries,
            site,
            crawl,
            repart,
            route,
            registry,
        }
    }

    /// The registry, for ad-hoc lookups and extra instruments.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A point-in-time export of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Finished sampled spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.spans()
    }

    /// Live per-shard busy time, µs — the Figure 2 quantity, read from
    /// the instruments instead of the broker.
    pub fn busy_us(&self) -> Vec<f64> {
        self.shard_busy.iter().map(|g| g.get()).collect()
    }

    /// Live busy load normalized by its mean (Figure 2's y-axis).
    pub fn busy_load_normalized(&self) -> Vec<f64> {
        let busy = self.busy_us();
        let mean = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
        if mean <= 0.0 {
            return vec![0.0; busy.len()];
        }
        busy.iter().map(|&b| b / mean).collect()
    }

    /// Live per-shard query counts.
    pub fn shard_queries(&self) -> Vec<u64> {
        self.shard_queries.iter().map(|c| c.get()).collect()
    }

    /// Live per-site served counts (empty for single-site configs).
    pub fn site_served(&self) -> Vec<u64> {
        self.site
            .as_ref()
            .map_or_else(Vec::new, |s| s.per_site_served.iter().map(|c| c.get()).collect())
    }
}

impl Recorder for ObsRecorder {
    fn record(&self, event: Event) {
        match event {
            Event::QueryStart { qid, now } => {
                self.queries.inc();
                if self.multi_site {
                    self.spans.touch(qid, now, Stage::Admit, 0.0);
                } else {
                    self.spans.enter(qid, now, Stage::Admit, 0.0);
                }
            }
            Event::CacheLookup { qid, now, hit } => {
                if hit { &self.cache_hits } else { &self.cache_misses }.inc();
                self.spans.touch(qid, now, Stage::CacheLookup, f64::from(u8::from(hit)));
            }
            Event::ScatterDispatch { qid, now, partitions } => {
                self.scatter_batches.inc();
                self.scatter_tasks.add(u64::from(partitions));
                self.spans.touch(qid, now, Stage::ScatterDispatch, f64::from(partitions));
            }
            Event::ShardService { qid, now, partition, service_us } => {
                self.shard_service_us.record(service_us);
                if let Some(g) = self.shard_busy.get(partition as usize) {
                    g.add(service_us);
                }
                if let Some(c) = self.shard_queries.get(partition as usize) {
                    c.inc();
                }
                self.spans.touch(qid, now, Stage::ShardService, service_us);
            }
            Event::GatherDone { qid, now, merged_hits, latency_us } => {
                self.broker_queries.inc();
                self.gather_merged_hits.add(merged_hits);
                self.gather_latency_us.record(latency_us as f64);
                self.spans.touch(qid, now, Stage::Gather, latency_us as f64);
            }
            Event::Hedge { qid, now, partition: _, extra_us } => {
                self.hedges.inc();
                self.hedge_extra_us.record(extra_us);
                self.spans.touch(qid, now, Stage::Hedge, extra_us);
            }
            Event::Outcome { qid, now, outcome, latency_us } => {
                match outcome {
                    Outcome::CacheHit => self.out_cache_hit.inc(),
                    Outcome::Full => self.out_full.inc(),
                    Outcome::Degraded => self.out_degraded.inc(),
                    Outcome::StaleFromCache => self.out_stale.inc(),
                    Outcome::Failed => self.out_failed.inc(),
                    Outcome::Shed => self.out_shed.inc(),
                    Outcome::Partial => self.out_partial.inc(),
                    Outcome::Routed => self.out_routed.inc(),
                }
                if let Some(l) = latency_us {
                    self.latency_us.record(l as f64);
                }
                let v = latency_us.unwrap_or(0) as f64;
                if self.multi_site {
                    self.spans.touch(qid, now, Stage::Outcome, v);
                } else {
                    self.spans.close(qid, now, Stage::Outcome, v);
                }
            }
            Event::SiteAttempt { qid, now, site, remote: _ } => {
                if let Some(s) = &self.site {
                    s.attempts.inc();
                }
                self.spans.enter(qid, now, Stage::SiteAttempt, f64::from(site));
            }
            Event::SiteFailover { qid, now, site: _, backoff_us } => {
                if let Some(s) = &self.site {
                    s.failovers.inc();
                    s.backoff_us.record(backoff_us as f64);
                }
                self.spans.touch(qid, now, Stage::SiteFailover, backoff_us as f64);
            }
            Event::WanHop { qid, now, from: _, to: _, rtt_us } => {
                if let Some(s) = &self.site {
                    s.wan_hops_attempted.inc();
                    s.wan_rtt_us.record(rtt_us as f64);
                }
                self.spans.touch(qid, now, Stage::WanHop, rtt_us as f64);
            }
            Event::SiteOutcome {
                qid,
                now,
                outcome,
                site,
                hops,
                degraded,
                added_latency_us,
                latency_us,
            } => {
                if let Some(s) = &self.site {
                    match outcome {
                        SiteOutcome::ServedLocal => s.served_local.inc(),
                        SiteOutcome::ServedRemote => s.served_remote.inc(),
                        SiteOutcome::ShedOverload => s.shed_overload.inc(),
                        SiteOutcome::ShedDeadline => s.shed_deadline.inc(),
                        SiteOutcome::Failed => s.failed.inc(),
                    }
                    if degraded {
                        s.degraded.inc();
                    }
                    let served =
                        matches!(outcome, SiteOutcome::ServedLocal | SiteOutcome::ServedRemote);
                    if served {
                        s.wan_hops.add(u64::from(hops));
                        s.added_latency_us.add(added_latency_us);
                    }
                    if let Some(site) = site {
                        if let Some(c) = s.per_site_served.get(site as usize) {
                            c.inc();
                        }
                    }
                    if let Some(l) = latency_us {
                        s.latency_us.record(l as f64);
                    }
                }
                self.spans.close(qid, now, Stage::Outcome, latency_us.unwrap_or(0) as f64);
            }
            // Crawl-tier events carry no query key: counters only, no
            // span protocol.
            Event::CrawlCrash { agent: _, now: _, lost_inflight } => {
                if let Some(c) = &self.crawl {
                    c.crashes.inc();
                    c.lost_inflight.add(lost_inflight);
                }
            }
            Event::CrawlRecover { .. } => {
                if let Some(c) = &self.crawl {
                    c.recoveries.inc();
                }
            }
            Event::CrawlReassign { now: _, hosts_moved } => {
                if let Some(c) = &self.crawl {
                    c.hosts_moved.add(hosts_moved);
                }
            }
            Event::CrawlHandoff { to: _, now: _, hosts: _, urls } => {
                if let Some(c) = &self.crawl {
                    c.handoff_batches.inc();
                    c.handoff_urls.add(urls);
                }
            }
            Event::CrawlRefetch { .. } => {
                if let Some(c) = &self.crawl {
                    c.refetches.inc();
                }
            }
            // Repart events carry no query key either: counters only.
            Event::RepartSplit { now: _, parent: _, children, epoch } => {
                if let Some(r) = &self.repart {
                    r.splits.inc();
                    r.children.add(u64::from(children));
                    r.epoch.set(epoch as f64);
                }
            }
            Event::RepartAbort { .. } => {
                if let Some(r) = &self.repart {
                    r.aborts.inc();
                }
            }
            // Route events are counters/histograms only: the routed
            // query's span is already traced by the ordinary serving
            // events, and profile/retrain events carry no query key.
            Event::RouteServed { qid: _, now: _, contacted, active, broadenings, hits, k } => {
                if let Some(r) = &self.route {
                    r.queries.inc();
                    r.shards_contacted.add(u64::from(contacted));
                    r.broadenings.add(u64::from(broadenings));
                    if contacted >= active {
                        r.covered.inc();
                    }
                    r.contacted_hist.record(f64::from(contacted));
                    if k > 0 {
                        r.recall_proxy.record(100.0 * f64::from(hits) / f64::from(k));
                    }
                }
            }
            Event::RouteProfile { now: _, epoch: _, generation } => {
                if let Some(r) = &self.route {
                    r.profiles.inc();
                    r.generation.set(generation as f64);
                }
            }
            Event::RouteRetrain { now: _, generation } => {
                if let Some(r) = &self.route {
                    r.retrains.inc();
                    r.generation.set(generation as f64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_zero_sized_and_dead() {
        assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
        assert!(!NoopRecorder.is_live());
        NoopRecorder.record(Event::QueryStart { qid: 1, now: 0 });
    }

    #[test]
    fn single_site_events_land_in_instruments_and_spans() {
        let rec = ObsRecorder::new(ObsConfig::single_site(2).sample(1));
        let qid = 42;
        rec.record(Event::QueryStart { qid, now: 0 });
        rec.record(Event::CacheLookup { qid, now: 0, hit: false });
        rec.record(Event::ScatterDispatch { qid, now: 0, partitions: 2 });
        rec.record(Event::ShardService { qid, now: 0, partition: 0, service_us: 200.0 });
        rec.record(Event::ShardService { qid, now: 0, partition: 1, service_us: 300.0 });
        rec.record(Event::GatherDone { qid, now: 0, merged_hits: 7, latency_us: 310 });
        rec.record(Event::Outcome { qid, now: 310, outcome: Outcome::Full, latency_us: Some(310) });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("engine.queries"), Some(1));
        assert_eq!(snap.counter("cache.misses"), Some(1));
        assert_eq!(snap.counter("engine.served.full"), Some(1));
        assert_eq!(snap.counter("scatter.tasks"), Some(2));
        assert_eq!(snap.counter("broker.queries"), Some(1));
        assert_eq!(rec.busy_us(), vec![200.0, 300.0]);
        assert_eq!(rec.shard_queries(), vec![1, 1]);
        assert_eq!(snap.histogram("engine.latency_us").map(|p| p.count()), Some(1));
        let spans = rec.spans();
        assert_eq!(spans.len(), 1, "span closed on Outcome");
        assert_eq!(spans[0].events.len(), 7);
        assert!(snap.counter("site.attempts").is_none(), "no site tier instruments");
    }

    #[test]
    fn multi_site_spans_open_on_site_attempt_and_close_on_site_outcome() {
        let rec = ObsRecorder::new(ObsConfig::multi_site(2, 3).sample(1));
        let qid = 7;
        rec.record(Event::SiteAttempt { qid, now: 0, site: 1, remote: false });
        rec.record(Event::QueryStart { qid, now: 0 });
        rec.record(Event::Outcome { qid, now: 9, outcome: Outcome::Failed, latency_us: None });
        rec.record(Event::SiteFailover { qid, now: 9, site: 1, backoff_us: 50 });
        rec.record(Event::WanHop { qid, now: 59, from: 1, to: 2, rtt_us: 80_000 });
        rec.record(Event::SiteAttempt { qid, now: 59, site: 2, remote: true });
        rec.record(Event::QueryStart { qid, now: 59 });
        rec.record(Event::Outcome { qid, now: 700, outcome: Outcome::Full, latency_us: Some(641) });
        rec.record(Event::SiteOutcome {
            qid,
            now: 700,
            outcome: SiteOutcome::ServedRemote,
            site: Some(2),
            hops: 1,
            degraded: false,
            added_latency_us: 80_050,
            latency_us: Some(80_691),
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("site.attempts"), Some(2));
        assert_eq!(snap.counter("site.failovers"), Some(1));
        assert_eq!(snap.counter("site.served_remote"), Some(1));
        assert_eq!(snap.counter("site.wan_hops"), Some(1));
        assert_eq!(snap.counter("site.added_latency_us"), Some(80_050));
        assert_eq!(snap.counter("engine.queries"), Some(2), "one per attempt");
        assert_eq!(rec.site_served(), vec![0, 0, 1]);
        let spans = rec.spans();
        assert_eq!(spans.len(), 1, "one span across both attempts");
        assert_eq!(spans[0].events.len(), 9);
    }

    #[test]
    fn out_of_range_partition_is_ignored() {
        let rec = ObsRecorder::new(ObsConfig::single_site(1).sample(0));
        rec.record(Event::ShardService { qid: 1, now: 0, partition: 99, service_us: 5.0 });
        assert_eq!(rec.busy_us(), vec![0.0]);
        assert_eq!(rec.snapshot().histogram("shard.service_us").map(|p| p.count()), Some(1));
    }

    #[test]
    fn crawl_events_land_in_crawl_instruments_only_when_enabled() {
        let rec = ObsRecorder::new(ObsConfig::crawl_tier());
        rec.record(Event::CrawlCrash { agent: 1, now: 10, lost_inflight: 3 });
        rec.record(Event::CrawlReassign { now: 10, hosts_moved: 12 });
        rec.record(Event::CrawlHandoff { to: 0, now: 10, hosts: 4, urls: 40 });
        rec.record(Event::CrawlHandoff { to: 2, now: 10, hosts: 1, urls: 5 });
        rec.record(Event::CrawlRecover { agent: 1, now: 90 });
        rec.record(Event::CrawlRefetch { agent: 0, now: 95 });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("crawl.crashes"), Some(1));
        assert_eq!(snap.counter("crawl.recoveries"), Some(1));
        assert_eq!(snap.counter("crawl.lost_inflight"), Some(3));
        assert_eq!(snap.counter("crawl.hosts_moved"), Some(12));
        assert_eq!(snap.counter("crawl.handoff_batches"), Some(2));
        assert_eq!(snap.counter("crawl.handoff_urls"), Some(45));
        assert_eq!(snap.counter("crawl.refetches"), Some(1));
        assert!(rec.spans().is_empty(), "crawl events never open spans");

        // A serving-only recorder ignores crawl events entirely.
        let serving = ObsRecorder::new(ObsConfig::single_site(1));
        serving.record(Event::CrawlCrash { agent: 0, now: 0, lost_inflight: 9 });
        assert!(serving.snapshot().counter("crawl.crashes").is_none());
    }

    #[test]
    fn repart_events_land_in_repart_instruments_only_when_enabled() {
        let rec = ObsRecorder::new(ObsConfig::single_site(4).with_repart());
        rec.record(Event::RepartSplit { now: 5, parent: 0, children: 2, epoch: 1 });
        rec.record(Event::RepartAbort { now: 9, parent: 1, epoch: 1 });
        rec.record(Event::RepartSplit { now: 12, parent: 1, children: 2, epoch: 2 });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("repart.splits"), Some(2));
        assert_eq!(snap.counter("repart.aborts"), Some(1));
        assert_eq!(snap.counter("repart.children"), Some(4));
        assert_eq!(snap.gauge("repart.epoch"), Some(2.0));
        assert!(rec.spans().is_empty(), "repart events never open spans");

        // A static-layout recorder ignores repart events entirely.
        let fixed = ObsRecorder::new(ObsConfig::single_site(4));
        fixed.record(Event::RepartSplit { now: 0, parent: 0, children: 2, epoch: 1 });
        assert!(fixed.snapshot().counter("repart.splits").is_none());
    }

    #[test]
    fn route_events_land_in_route_instruments_only_when_enabled() {
        let rec = ObsRecorder::new(ObsConfig::single_site(4).with_route());
        rec.record(Event::RouteProfile { now: 1, epoch: 0, generation: 0 });
        rec.record(Event::RouteServed {
            qid: 7,
            now: 2,
            contacted: 2,
            active: 4,
            broadenings: 1,
            hits: 9,
            k: 10,
        });
        rec.record(Event::RouteServed {
            qid: 8,
            now: 3,
            contacted: 4,
            active: 4,
            broadenings: 0,
            hits: 10,
            k: 10,
        });
        rec.record(Event::RouteRetrain { now: 4, generation: 1 });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("route.queries"), Some(2));
        assert_eq!(snap.counter("route.shards_contacted"), Some(6));
        assert_eq!(snap.counter("route.broadenings"), Some(1));
        assert_eq!(snap.counter("route.covered"), Some(1));
        assert_eq!(snap.counter("route.profiles"), Some(1));
        assert_eq!(snap.counter("route.retrains"), Some(1));
        assert_eq!(snap.gauge("route.generation"), Some(1.0));
        let hist = snap.histogram("route.contacted").expect("contacted histogram");
        assert_eq!(hist.count(), 2);
        let recall = snap.histogram("route.recall_proxy_pct").expect("recall histogram");
        assert_eq!(recall.count(), 2);
        assert!(rec.spans().is_empty(), "route events never open spans");

        // A recorder without the route family ignores route events entirely.
        let fixed = ObsRecorder::new(ObsConfig::single_site(4));
        fixed.record(Event::RouteRetrain { now: 0, generation: 1 });
        assert!(fixed.snapshot().counter("route.retrains").is_none());
    }

    #[test]
    fn full_system_instrument_names_do_not_collide() {
        use std::collections::BTreeSet;
        let names = |cfg: ObsConfig| -> BTreeSet<String> {
            ObsRecorder::new(cfg).snapshot().entries().iter().map(|(n, _)| n.clone()).collect()
        };
        let base = names(ObsConfig::single_site(3));
        let site = &names(ObsConfig::multi_site(3, 2)) - &base;
        let crawl = &names(ObsConfig::crawl_tier()) - &names(ObsConfig::single_site(0));
        let repart = &names(ObsConfig::single_site(3).with_repart()) - &base;
        let route = &names(ObsConfig::single_site(3).with_route()) - &base;
        assert!(!site.is_empty() && !crawl.is_empty() && !repart.is_empty() && !route.is_empty());
        // Composing every family shares the always-present engine set
        // and adds each optional set exactly once: no name appears in
        // two families, and the union is exactly the full registry.
        let mut union = base.clone();
        for family in [&site, &crawl, &repart, &route] {
            for name in family {
                assert!(union.insert(name.clone()), "instrument {name:?} collides across tiers");
            }
        }
        assert_eq!(union, names(ObsConfig::full_system(3, 2)));
    }

    #[test]
    fn arc_recorder_delegates() {
        let rec = Arc::new(ObsRecorder::new(ObsConfig::single_site(1).sample(0)));
        assert!(Recorder::is_live(&rec));
        Recorder::record(&rec, Event::QueryStart { qid: 1, now: 0 });
        assert_eq!(rec.snapshot().counter("engine.queries"), Some(1));
    }
}
