//! A minimal JSON value and writer.
//!
//! The workspace vendors no serialization framework, so snapshot export
//! and the bench harness's machine-readable `BENCH_<name>.json` files
//! share this ~100-line subset: build a [`Json`] tree, `render` it.
//! Output is deterministic (object keys keep insertion order) and every
//! number round-trips through `f64` Display, which prints the shortest
//! exact representation.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; NaN/±inf render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj([
            ("name", Json::from("exp")),
            ("n", Json::from(3u64)),
            ("rows", Json::Arr(vec![Json::from(1.5), Json::Null, Json::from(true)])),
        ]);
        assert_eq!(j.render(), r#"{"name":"exp","n":3,"rows":[1.5,null,true]}"#);
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn key_order_is_stable() {
        let j = Json::obj([("b", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(j.render(), r#"{"b":1,"a":2}"#);
    }
}
