//! Quickstart: build a complete distributed search engine on a synthetic
//! Web and ask it a question.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use distributed_web_retrieval::core::{EngineConfig, SearchEngineLab};
use distributed_web_retrieval::querylog::model::QueryId;
use distributed_web_retrieval::text::TermId;

fn main() {
    // Defaults: a 2k-page web, 4 crawl agents, 4 index partitions with 2
    // replicas each, an LRU result cache.
    println!("building the laboratory (generate web -> crawl -> partition -> index)...");
    let lab = SearchEngineLab::build(EngineConfig::default());

    let crawl = lab.crawl_report();
    println!(
        "crawled {} pages ({:.1}% coverage) with {} URL-exchange messages",
        crawl.fetched_pages,
        100.0 * crawl.coverage,
        crawl.exchange.messages
    );

    // Ask the most popular query in the synthetic universe.
    let q = lab.query_model().query(QueryId(0));
    let terms: Vec<TermId> = q.terms.iter().map(|t| TermId(t.0)).collect();
    let hits = lab.search(&terms, 5);
    println!("\ntop-5 for the most popular query (topic {:?}):", q.topic);
    for (rank, h) in hits.iter().enumerate() {
        println!("  {}. doc {:>6}  score {:.3}", rank + 1, h.doc, h.score);
    }

    // Serve an hour of realistic traffic through the cached engine.
    println!("\nserving one simulated hour of Zipf traffic...");
    let report = lab.serve_stream();
    println!(
        "served {} queries: {} cache hits ({:.1}%), {} full evaluations",
        report.queries_served,
        report.serving.cache_hits,
        100.0 * report.cache_hit_ratio,
        report.serving.full
    );
}
