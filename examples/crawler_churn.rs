//! Crawler-tier fault tolerance: agents crash and recover mid-crawl,
//! hosts are re-routed by consistent hashing, and per-host frontiers are
//! handed to the new owners with politeness state carried over — the
//! Section 3 dependability scenario end to end.
//!
//! ```sh
//! cargo run --example crawler_churn --release
//! ```

use distributed_web_retrieval::avail::failure::UpDownProcess;
use distributed_web_retrieval::crawler::assign::{ConsistentHashAssigner, HashAssigner};
use distributed_web_retrieval::crawler::sim::{CrawlConfig, DistributedCrawl, SpanOutcome};
use distributed_web_retrieval::crawler::AgentSchedule;
use distributed_web_retrieval::sim::SECOND;
use distributed_web_retrieval::webgraph::generate::{generate_web, WebConfig};
use dwr_obs::{ObsConfig, ObsRecorder};
use std::sync::Arc;

const AGENTS: u32 = 6;

fn main() {
    let seed = 2007;
    let mut web_cfg = WebConfig::tiny();
    web_cfg.num_pages = 1_500;
    web_cfg.num_hosts = 75;
    let web = generate_web(&web_cfg, seed);
    let cfg = CrawlConfig {
        agents: AGENTS,
        connections_per_agent: 8,
        politeness_delay: SECOND / 2,
        record_trace: true,
        ..CrawlConfig::default()
    };
    println!(
        "{} pages on {} hosts, {AGENTS} agents, politeness {:.1} s\n",
        web.num_pages(),
        web.num_hosts(),
        cfg.politeness_delay as f64 / SECOND as f64
    );

    // --- Fault-free baseline. ---
    let baseline =
        DistributedCrawl::new(&web, ConsistentHashAssigner::new(AGENTS, 64), cfg.clone(), seed)
            .run();
    println!(
        "fault-free:  coverage {:.3} in {:.0} s simulated",
        baseline.coverage,
        baseline.makespan as f64 / SECOND as f64
    );

    // --- The same crawl under heavy churn: every agent flaps on its own
    // up/down process; the schedule spans well past the baseline. ---
    let process = UpDownProcess::exponential(baseline.makespan / 4, baseline.makespan / 12);
    let schedule = AgentSchedule::generate(AGENTS as usize, &process, 4 * baseline.makespan, seed);
    let recorder = Arc::new(ObsRecorder::new(ObsConfig::crawl_tier()));
    let mut churn_cfg = cfg.clone();
    churn_cfg.faults = Some(schedule.clone());
    let churned =
        DistributedCrawl::new(&web, ConsistentHashAssigner::new(AGENTS, 64), churn_cfg, seed)
            .with_obs(Arc::clone(&recorder))
            .run();
    let f = churned.faults;
    println!(
        "under churn: coverage {:.3} in {:.0} s simulated",
        churned.coverage,
        churned.makespan as f64 / SECOND as f64
    );
    println!(
        "  {} crashes / {} recoveries ({} suppressed to keep one agent alive)",
        f.crashes, f.recoveries, f.crashes_suppressed
    );
    println!(
        "  {} host reassignments, {} frontier-handoff batches carrying {} URLs",
        f.hosts_moved, f.handoff_batches, f.handoff_urls
    );
    println!(
        "  {} fetches lost in crashes, {} of them refetched, {} duplicate fetches",
        f.lost_inflight, f.refetches, churned.duplicate_fetches
    );

    // The live obs counters agree with the offline accounting.
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("crawl.crashes"), Some(f.crashes));
    assert_eq!(snap.counter("crawl.hosts_moved"), Some(f.hosts_moved));
    println!("  (live crawl.* counters cross-check against the report)");

    // The politeness invariant survives every handoff: check the trace.
    let mut per_host = std::collections::HashMap::<_, Vec<_>>::new();
    for s in &churned.trace {
        per_host.entry(s.host).or_default().push((s.start, s.end));
    }
    let violations: usize = per_host
        .values_mut()
        .map(|spans| {
            spans.sort_unstable();
            spans.windows(2).filter(|w| w[1].0 < w[0].1 + cfg.politeness_delay).count()
        })
        .sum();
    let lost = churned.trace.iter().filter(|s| s.outcome == SpanOutcome::LostInCrash).count();
    println!(
        "  trace: {} attempts, {} lost to crashes, {} politeness violations",
        churned.trace.len(),
        lost,
        violations
    );
    assert_eq!(violations, 0);

    // --- Why consistent hashing: the same schedule under modulo. ---
    let mut modulo_cfg = cfg;
    modulo_cfg.faults = Some(schedule);
    let modulo = DistributedCrawl::new(&web, HashAssigner::new(AGENTS), modulo_cfg, seed).run();
    let changes = |s: &distributed_web_retrieval::crawler::sim::CrawlFaultStats| {
        (s.crashes + s.recoveries).max(1)
    };
    println!(
        "\nsame churn, modulo rehashing: {:.0} hosts moved per membership change",
        modulo.faults.hosts_moved as f64 / changes(&modulo.faults) as f64
    );
    println!(
        "         consistent hashing: {:.0} hosts moved per membership change",
        f.hosts_moved as f64 / changes(&f) as f64
    );
    println!("\"new agents enter the crawling system without re-hashing all the server names\"");
}
