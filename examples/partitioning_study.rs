//! Compare document-partitioning strategies and collection selection on
//! one corpus — a miniature of the Section 4 design space.
//!
//! ```sh
//! cargo run --example partitioning_study --release
//! ```

use distributed_web_retrieval::partition::doc::{
    DocPartitioner, KMeansPartitioner, QueryDrivenPartitioner, RandomPartitioner,
    RoundRobinPartitioner, TrainingResults,
};
use distributed_web_retrieval::partition::parted::{corpus_from_web, PartitionedIndex};
use distributed_web_retrieval::partition::quality::{recall_curve, size_balance};
use distributed_web_retrieval::partition::select::{
    CollectionSelector, CoriSelector, QueryDrivenSelector,
};
use distributed_web_retrieval::querylog::model::QueryModel;
use distributed_web_retrieval::sim::SimRng;
use distributed_web_retrieval::text::index::build_index;
use distributed_web_retrieval::text::score::Bm25;
use distributed_web_retrieval::text::search::search_or;
use distributed_web_retrieval::text::TermId;
use distributed_web_retrieval::webgraph::content::ContentModel;
use distributed_web_retrieval::webgraph::generate::{generate_web, WebConfig};

const K: usize = 6;

fn main() {
    let seed = 77;
    let web = generate_web(&WebConfig::tiny(), seed);
    let content = ContentModel::small(8);
    let corpus = corpus_from_web(&web, &content, seed);
    let queries = QueryModel::generate(&content, 800, 0.8, 0.9, seed);
    let reference = build_index(&corpus);

    // Replay a training stream for the query-driven system.
    let mut rng = SimRng::new(seed);
    let mut counts = std::collections::HashMap::new();
    for _ in 0..4_000 {
        *counts.entry(queries.sample(&mut rng)).or_insert(0u64) += 1;
    }
    let training = TrainingResults {
        queries: counts
            .iter()
            .map(|(&q, &c)| {
                let terms: Vec<TermId> =
                    queries.query(q).terms.iter().map(|t| TermId(t.0)).collect();
                let docs = search_or(&reference, &terms, 10, &Bm25::default(), &reference)
                    .into_iter()
                    .map(|h| h.doc.0)
                    .collect();
                (terms, c as f64, docs)
            })
            .collect(),
    };
    println!(
        "training: {} distinct queries; {:.1}% of docs never recalled",
        training.queries.len(),
        100.0 * training.never_recalled_fraction(corpus.len())
    );

    let test: Vec<Vec<TermId>> = (0..150)
        .map(|_| {
            let q = queries.sample(&mut rng);
            queries.query(q).terms.iter().map(|t| TermId(t.0)).collect()
        })
        .collect();

    println!(
        "\n{:<26} {:>9} {:>8} | recall@1 recall@2 recall@{K}",
        "partitioner + selector", "max/mean", "gini"
    );
    let study = |name: &str, assignment: Vec<u32>, selector: &dyn CollectionSelector| {
        let pi = PartitionedIndex::build(&corpus, &assignment, K);
        let b = size_balance(&pi);
        let curve = recall_curve(&pi, selector, &corpus, &test, 10);
        println!(
            "{:<26} {:>9.2} {:>8.3} | {:>7.1}% {:>7.1}% {:>7.1}%",
            name,
            b.max_over_mean,
            b.gini,
            100.0 * curve[0],
            100.0 * curve[1],
            100.0 * curve[K - 1]
        );
    };

    let rr = RoundRobinPartitioner.assign(&corpus, K);
    let rr_pi = PartitionedIndex::build(&corpus, &rr, K);
    study("round-robin + CORI", rr.clone(), &CoriSelector::from_partitions(&rr_pi));

    let rnd = RandomPartitioner { seed }.assign(&corpus, K);
    let rnd_pi = PartitionedIndex::build(&corpus, &rnd, K);
    study("random + CORI", rnd, &CoriSelector::from_partitions(&rnd_pi));

    let km = KMeansPartitioner::default().assign(&corpus, K);
    let km_pi = PartitionedIndex::build(&corpus, &km, K);
    study("k-means + CORI", km, &CoriSelector::from_partitions(&km_pi));

    let qd = QueryDrivenPartitioner { training: training.clone(), iterations: 15, seed };
    let qd_assign = qd.assign(&corpus, K);
    let qd_sel = QueryDrivenSelector::train(&training, &qd_assign, K);
    study("query-driven co-cluster", qd_assign, &qd_sel);

    println!("\nreading: balanced partitions (max/mean ~ 1) need all K partitions for full");
    println!("recall; structured partitions trade balance for selective recall — the");
    println!("Section 4 tension between load balance and collection selection.");
}
