//! Drive the distributed crawler directly, then index what it fetched and
//! search it — the Section 3 workflow with every knob exposed.
//!
//! Shows: consistent-hash host assignment, most-cited URL seeding,
//! politeness, transient-failure retries, an agent crash with recovery,
//! and finally indexing + querying the crawl.
//!
//! ```sh
//! cargo run --example crawl_and_search --release
//! ```

use distributed_web_retrieval::crawler::assign::{AgentId, ConsistentHashAssigner};
use distributed_web_retrieval::crawler::faults::AgentSchedule;
use distributed_web_retrieval::crawler::sim::{CrawlConfig, DistributedCrawl};
use distributed_web_retrieval::partition::parted::corpus_from_web;
use distributed_web_retrieval::sim::SECOND;
use distributed_web_retrieval::text::index::build_index;
use distributed_web_retrieval::text::score::Bm25;
use distributed_web_retrieval::text::search::search_or;
use distributed_web_retrieval::text::TermId;
use distributed_web_retrieval::webgraph::content::ContentModel;
use distributed_web_retrieval::webgraph::generate::{generate_web, WebConfig};
use distributed_web_retrieval::webgraph::graph::TopicId;
use distributed_web_retrieval::webgraph::qos::QosConfig;

fn main() {
    let seed = 2007;
    let mut web_cfg = WebConfig::tiny();
    web_cfg.num_pages = 4_000;
    web_cfg.num_hosts = 150;
    let web = generate_web(&web_cfg, seed);
    println!(
        "web: {} pages on {} hosts, {} links, locality {:.2}",
        web.num_pages(),
        web.num_hosts(),
        web.num_links(),
        web.link_locality()
    );

    // An 8-agent crawl with everything turned on: flaky servers, retries,
    // most-cited seeding, and an agent crash halfway through.
    let cfg = CrawlConfig {
        agents: 8,
        connections_per_agent: 16,
        politeness_delay: SECOND,
        most_cited_seed: 100,
        qos: QosConfig { flaky_fraction: 0.1, flaky_failure_prob: 0.3, ..QosConfig::default() },
        faults: Some(AgentSchedule::single_crash(8, AgentId(5), 30 * 60 * SECOND)),
        ..CrawlConfig::default()
    };
    let report = DistributedCrawl::new(&web, ConsistentHashAssigner::new(8, 128), cfg, seed).run();
    println!(
        "\ncrawl: {:.1}% coverage in {:.1} simulated hours",
        100.0 * report.coverage,
        report.makespan as f64 / 3.6e9
    );
    println!(
        "  {} attempts, {} transient failures, {} abandoned, {} duplicates (crash recovery)",
        report.attempts, report.transient_failures, report.abandoned, report.duplicate_fetches
    );
    println!(
        "  exchanges: {} URLs in {} messages ({} suppressed as most-cited)",
        report.exchange.sent_urls, report.exchange.messages, report.exchange.suppressed
    );
    println!("  per-agent fetches: {:?} (agent 5 crashed)", report.per_agent_fetches);
    println!("  dns cache hit ratio: {:.1}%", 100.0 * report.dns.hit_ratio());

    // Index the corpus and run a topical query.
    let content = ContentModel::small(web_cfg.num_topics);
    let corpus = corpus_from_web(&web, &content, seed);
    let index = build_index(&corpus);
    println!(
        "\nindex: {} docs, {} distinct terms, {:.1} KB of postings",
        index.num_docs(),
        index.num_terms(),
        index.encoded_bytes() as f64 / 1024.0
    );

    let mut rng = distributed_web_retrieval::sim::SimRng::new(seed);
    let q = content.sample_query_terms(TopicId(2), 3, &mut rng);
    let terms: Vec<TermId> = q.iter().map(|t| TermId(t.0)).collect();
    let hits = search_or(&index, &terms, 5, &Bm25::default(), &index);
    println!("\ntop-5 for a topic-2 query ({} terms):", terms.len());
    for (rank, h) in hits.iter().enumerate() {
        let page = distributed_web_retrieval::webgraph::graph::PageId(h.doc.0);
        println!(
            "  {}. doc {:>6}  score {:.3}  (host {:?}, topic {:?})",
            rank + 1,
            h.doc.0,
            h.score,
            web.page(page).host,
            web.page(page).topic
        );
    }
}
