//! Full-system soak: crawl → incremental index → serve, with every tier
//! churning at once and the end-state invariants checked from the trace.
//!
//! ```sh
//! cargo run --example ocean_soak --release
//! ```
//!
//! One run wires the whole stack together: a churning distributed crawl
//! feeds epoch-stamped index refreshes; the published index splits
//! online under live traffic; three serving sites (with outage traces,
//! replica faults, shard routing, hedging, stragglers, and gather
//! deadlines) answer a diurnal query stream. A single `dwr-obs`
//! registry instruments all of it; the interval report below is taken
//! with `Snapshot::delta` over the per-window snapshots.

use distributed_web_retrieval::obs::Snapshot;
use distributed_web_retrieval::sim::{HOUR, MINUTE, SECOND};
use distributed_web_retrieval::soak::{SoakConfig, SoakInvariants, SoakScenario};

fn rate(n: u64, d: u64) -> f64 {
    if d == 0 {
        return 0.0;
    }
    100.0 * n as f64 / d as f64
}

fn main() {
    let cfg = SoakConfig::storm(42);
    println!(
        "soaking: {} pages / {} hosts crawled by {} churning agents,",
        cfg.pages, cfg.hosts, cfg.agents
    );
    println!(
        "  refreshed every {}min into {} shards (+{} online splits),",
        cfg.refresh_interval / MINUTE,
        cfg.partitions,
        cfg.splits
    );
    println!(
        "  served from {} sites for {}h of diurnal traffic...\n",
        cfg.sites,
        cfg.serve_horizon / HOUR
    );
    let report = SoakScenario::new(cfg).run();

    // --- Crawl tier. ---
    println!("crawl tier (churned vs churn-free baseline):");
    println!(
        "  coverage {:.1}% (baseline {:.1}%), makespan {:.0}s (baseline {:.0}s)",
        100.0 * report.crawl_coverage,
        100.0 * report.baseline_coverage,
        report.crawl_makespan as f64 / SECOND as f64,
        report.baseline_makespan as f64 / SECOND as f64,
    );
    let f = &report.crawl_faults;
    println!(
        "  {} crashes, {} recoveries, {} hosts moved, {} URLs handed off, {} refetches",
        f.crashes, f.recoveries, f.hosts_moved, f.handoff_urls, f.refetches
    );

    // --- Index tier. ---
    println!(
        "\nindex tier ({} docs through {} refreshes):",
        report.fetched_docs,
        report.refreshes.len()
    );
    println!(
        "  max freshness lag {:.1}s (bound: the {}s refresh interval)",
        report.max_freshness_lag() as f64 / SECOND as f64,
        report.refresh_interval / SECOND,
    );
    let r = &report.repart_stats;
    println!(
        "  online splits under traffic: {} committed, {} aborted, live epoch {}",
        r.splits_committed, r.splits_aborted, r.epoch
    );

    // --- Serve tier, window by window. ---
    println!("\nserve tier, per {}h window (from Snapshot::delta):", report.windows[0].end / HOUR);
    println!("  window       queries   full%  routed  remote  degraded  shed+failed");
    let mut prev: Option<&Snapshot> = None;
    for w in &report.windows {
        let d = match prev {
            Some(p) => w.snapshot.delta(p),
            None => w.snapshot.clone(),
        };
        let served_full = d.counter("engine.served.full").unwrap_or(0)
            + d.counter("engine.served.cache_hit").unwrap_or(0)
            + d.counter("engine.served.routed").unwrap_or(0);
        let site_queries = d.counter("site.attempts").unwrap_or(0);
        println!(
            "  {:>2}h-{:>2}h  {:>10}  {:>5.1}  {:>6}  {:>6}  {:>8}  {:>11}",
            w.start / HOUR,
            w.end / HOUR,
            w.queries,
            rate(served_full, site_queries.max(w.queries)),
            d.counter("engine.served.routed").unwrap_or(0),
            d.counter("site.served_remote").unwrap_or(0),
            d.counter("engine.served.degraded").unwrap_or(0),
            d.counter("site.shed_overload").unwrap_or(0)
                + d.counter("site.shed_deadline").unwrap_or(0)
                + d.counter("site.failed").unwrap_or(0),
        );
        prev = Some(&w.snapshot);
    }

    let s = &report.site_stats;
    let all_sites = report.engine_stats.len() as u32;
    let dipped = report.queries.iter().filter(|q| q.live_sites < all_sites).count();
    println!(
        "  {} queries arrived during a site outage; {} served remotely over {} WAN hops",
        dipped, s.served_remote, s.wan_hops
    );

    let c = report.outcomes();
    println!("\noutcomes over {} queries:", c.total());
    println!(
        "  {} cache-hit, {} full, {} routed, {} degraded, {} stale, {} partial, {} shed, {} failed",
        c.cache_hit, c.full, c.routed, c.degraded, c.stale, c.partial, c.shed, c.failed
    );
    println!(
        "  => {:.1}% served at full fidelity through the storm",
        100.0 * report.full_fidelity_fraction()
    );

    // --- End-state invariants, asserted from the trace. ---
    let inv = SoakInvariants::check(&report);
    println!("\nend-state invariants:");
    println!("  politeness violations across handoffs .... {}", inv.politeness_violations);
    println!("  queries Failed while >=1 site live ....... {}", inv.failed_while_live);
    println!("  outcome-bucket accounting gap ............ {}", inv.outcome_gap);
    println!(
        "  freshness lag vs bound ................... {:.1}s <= {}s",
        inv.freshness_max_lag as f64 / SECOND as f64,
        inv.freshness_bound / SECOND
    );
    println!("  exactly-once epoch coverage .............. {}", inv.coverage_exactly_once);
    println!("  live-vs-offline instrument mismatches .... {}", inv.mismatches.len());
    inv.assert_clean();
    println!("\nall soak invariants hold.");
}
