//! Multi-site operation: geographic routing, diurnal offloading, site
//! failures, replicated user state — the Section 5 scenario end to end.
//!
//! ```sh
//! cargo run --example multi_site_failover --release
//! ```

use distributed_web_retrieval::avail::failure::DownInterval;
use distributed_web_retrieval::avail::monthly::{
    availability_histogram, figure5_thresholds, monthly_availability,
};
use distributed_web_retrieval::avail::site::{Site, SiteConfig};
use distributed_web_retrieval::partition::doc::{DocPartitioner, RoundRobinPartitioner};
use distributed_web_retrieval::partition::parted::{Corpus, PartitionedIndex};
use distributed_web_retrieval::query::cache::LruCache;
use distributed_web_retrieval::query::engine::DistributedEngine;
use distributed_web_retrieval::query::multisite::{
    MultiSiteConfig, MultiSiteEngine, SiteEngineSpec,
};
use distributed_web_retrieval::query::replica::PrimaryBackupStore;
use distributed_web_retrieval::query::site::{simulate_multisite, RoutingPolicy, SiteSpec};
use distributed_web_retrieval::querylog::arrival::{generate_arrivals, DiurnalProfile};
use distributed_web_retrieval::sim::net::Topology;
use distributed_web_retrieval::sim::{SimTime, DAY, HOUR};
use distributed_web_retrieval::text::TermId;

fn main() {
    let seed = 404;

    // --- Three sites in three time zones. ---
    let sites = vec![
        SiteSpec { region: 0, servers: 12, mean_service_s: 0.1 },
        SiteSpec { region: 1, servers: 12, mean_service_s: 0.1 },
        SiteSpec { region: 2, servers: 12, mean_service_s: 0.1 },
    ];
    let profiles: Vec<DiurnalProfile> = (0..3)
        .map(|r| DiurnalProfile { mean_qps: 70.0, amplitude: 0.9, phase: r as f64 / 3.0 })
        .collect();
    let arrivals = generate_arrivals(&profiles, DAY, seed);
    let topo = Topology::geo_ring(3);
    println!("one day, {} queries across 3 regions", arrivals.len());

    let near = simulate_multisite(&arrivals, &sites, &topo, RoutingPolicy::Nearest, DAY, &[]);
    let aware = simulate_multisite(
        &arrivals,
        &sites,
        &topo,
        RoutingPolicy::LoadAware { threshold: 0.65 },
        DAY,
        &[],
    );
    println!(
        "nearest routing:    peak utilization {:>4.0}%, {} overload-hour queries",
        100.0 * near.peak_utilization(),
        near.overloaded
    );
    println!(
        "load-aware routing: peak utilization {:>4.0}%, {} rerouted, {} overloaded",
        100.0 * aware.peak_utilization(),
        aware.rerouted,
        aware.overloaded
    );

    // --- A site outage during the local peak (analytic model). ---
    let traces = vec![
        Site::from_down_intervals(vec![DownInterval { start: 9 * HOUR, end: 15 * HOUR }], DAY),
        Site::always_up(DAY),
        Site::always_up(DAY),
    ];
    let outage = simulate_multisite(&arrivals, &sites, &topo, RoutingPolicy::Nearest, DAY, &traces);
    println!(
        "site-0 outage 9h-15h: {} queries diverted; surviving peak {:.0}%; {} unserved",
        outage.rerouted,
        100.0 * outage.peak_utilization(),
        outage.unserved
    );

    // --- The same outage served live by the MultiSiteEngine. ---
    // One small engine per site over the same corpus; site 0's queries
    // fail over to the ring neighbours while its trace says "down".
    let corpus: Corpus =
        (0..60u32).map(|d| vec![(TermId(d % 8), 2), (TermId(100 + d % 5), 1)]).collect();
    let assignment = RoundRobinPartitioner.assign(&corpus, 4);
    let pi = PartitionedIndex::build(&corpus, &assignment, 4);
    let engine = MultiSiteEngine::new(
        traces
            .iter()
            .enumerate()
            .map(|(s, trace)| SiteEngineSpec {
                region: s as u16,
                capacity_qps: 100.0,
                engine: DistributedEngine::new(&pi, LruCache::new(64), 2),
                outages: trace.clone(),
            })
            .collect(),
        topo.clone(),
        MultiSiteConfig::default(),
    );
    let n = 600u64;
    for i in 0..n {
        engine.advance_to(i as SimTime * DAY / n as SimTime);
        engine.query((i % 3) as u16, &[TermId((i % 8) as u32)], 10);
    }
    let live = engine.stats();
    println!(
        "live engine, {} queries: {} local, {} remote ({} WAN hops), {} shed, {} failed",
        live.total(),
        live.served_local,
        live.served_remote,
        live.wan_hops,
        live.shed(),
        live.failed
    );

    // --- How often do sites fail? The BIRN-like availability picture. ---
    let configs: Vec<SiteConfig> = (0..16).map(|_| SiteConfig::birn_like(2)).collect();
    let monthly = monthly_availability(&configs, 8, seed);
    let hist = availability_histogram(&monthly, &figure5_thresholds());
    println!(
        "\nsimulated fleet of 16 sites over 8 months: {:.1} sites/month with an outage",
        hist.last().copied().unwrap_or(0.0)
    );

    // --- Personalization state must survive those failures. ---
    let mut profiles_store = PrimaryBackupStore::new(2);
    profiles_store.put(1001, 7).expect("acked");
    profiles_store.put(1002, 3).expect("acked");
    println!("\nuser-profile store: primary is replica {}", profiles_store.primary());
    profiles_store.crash(0);
    println!(
        "primary crashed -> new primary {}; user 1001 prefs still {:?}",
        profiles_store.primary(),
        profiles_store.get(1001)
    );
    profiles_store.recover(0);
    profiles_store.crash(1);
    profiles_store.crash(2);
    println!(
        "after recovery + two more crashes, user 1002 prefs still {:?}",
        profiles_store.get(1002)
    );
}
