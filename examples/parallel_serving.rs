//! The shared-ownership query path from the outside: one engine value,
//! scatter-gather parallelism inside a query, and concurrent clients
//! sharing the engine across a stream — with bit-identical results to
//! the sequential configuration.

use distributed_web_retrieval::core::{EngineConfig, SearchEngineLab, StreamOptions};

fn main() {
    let lab = SearchEngineLab::build(EngineConfig::default());

    println!("serving the same hour of traffic three ways...\n");
    let seq = lab.serve_stream_with(StreamOptions::default());
    let par = lab.serve_stream_with(StreamOptions { scatter_threads: Some(4), clients: 1 });
    let multi = lab.serve_stream_with(StreamOptions { scatter_threads: Some(4), clients: 4 });

    for (name, r) in [("sequential", &seq), ("parallel scatter", &par), ("4 clients", &multi)] {
        println!(
            "{name:>16}: {} served, {} backend (hit ratio {:.1}%), mean backend latency {:.0}µs",
            r.queries_served,
            r.backend_queries,
            r.cache_hit_ratio * 100.0,
            r.backend_latency_mean_us
        );
    }

    assert_eq!(seq.queries_served, par.queries_served);
    assert_eq!(seq.serving, par.serving);
    assert_eq!(seq.backend_latency_mean_us, par.backend_latency_mean_us);
    println!("\nparallel scatter report is identical to sequential (same simulated time)");
    assert_eq!(multi.queries_served, seq.queries_served);
    println!("{} concurrent clients served the whole stream, nothing lost", 4);
}
