//! A news vertical: the frequently-updating collection the paper singles
//! out ("certain special document collections, such as news articles, and
//! blogs, where updates are so frequent that there is usually some kind of
//! online index maintenance strategy") — with online geometric-merge
//! indexing, phrase search, language routing, and personalization.
//!
//! ```sh
//! cargo run --example news_vertical --release
//! ```

use distributed_web_retrieval::query::broker::GlobalHit;
use distributed_web_retrieval::query::personalize::{personalize_ranking, UserProfile};
use distributed_web_retrieval::sim::SimRng;
use distributed_web_retrieval::text::dynamic::{DynamicIndex, MergePolicy};
use distributed_web_retrieval::text::langid::LanguageIdentifier;
use distributed_web_retrieval::text::positions::PositionalIndex;
use distributed_web_retrieval::text::TermId;
use distributed_web_retrieval::webgraph::content::ContentModel;
use distributed_web_retrieval::webgraph::graph::TopicId;

fn main() {
    let seed = 1234;
    let content = ContentModel::small(6);
    let mut rng = SimRng::new(seed);

    // --- Ingest a day of articles into the online index. ---
    let mut index = DynamicIndex::new(MergePolicy::Geometric { r: 3 }, 32);
    let mut topics_of: Vec<u16> = Vec::new();
    println!("ingesting 2,000 articles through the geometric-merge online index...");
    for i in 0..2_000u32 {
        let topic = TopicId((i % 6) as u16);
        let doc = content.sample_document(topic, &mut rng);
        let tf: Vec<(TermId, u32)> = doc.iter().map(|&(t, c)| (TermId(t.0), c)).collect();
        index.insert(tf);
        topics_of.push(topic.0);
    }
    let stats = index.stats();
    println!(
        "  {} segments, {} merges, {} docs rewritten, {:.1} ms total write-lock time",
        index.num_segments(),
        stats.merges,
        stats.docs_rewritten,
        stats.lock_time_us as f64 / 1000.0
    );

    // --- Ranked search over the live index. ---
    let q = content.sample_query_terms(TopicId(2), 3, &mut rng);
    let terms: Vec<TermId> = q.iter().map(|t| TermId(t.0)).collect();
    let hits = index.search(&terms, 5);
    println!("\ntop-5 for a topic-2 query on the live index:");
    for (r, h) in hits.iter().enumerate() {
        println!("  {}. article {:>5}  score {:.3}", r + 1, h.doc.0, h.score);
    }

    // --- Personalized re-ranking for a sports-obsessed reader. ---
    let mut profile = UserProfile::default();
    for _ in 0..8 {
        profile.record_click(4); // the reader keeps clicking topic 4
    }
    // A background (shared-vocabulary) query returns articles of every
    // topic — the case where personalization can actually reorder.
    let broad_terms: Vec<TermId> = vec![TermId(0), TermId(1)];
    let neutral = index.search(&broad_terms, 10);
    let as_global: Vec<GlobalHit> =
        neutral.iter().map(|h| GlobalHit { doc: h.doc.0, score: h.score }).collect();
    let personal = personalize_ranking(&as_global, &profile, &|doc| topics_of[doc as usize]);
    println!(
        "\npersonalization: topic-4 articles in the top-5 went {} -> {}",
        neutral.iter().take(5).filter(|h| topics_of[h.doc.0 as usize] == 4).count(),
        personal.iter().take(5).filter(|h| topics_of[h.doc as usize] == 4).count()
    );

    // --- Phrase search over a positional index of the same feed. ---
    let mut stream_rng = SimRng::new(seed ^ 0xFEED);
    // The wire phrase every topic-1 breaking-news article leads with.
    let breaking: [u32; 2] =
        [content.topic_base(TopicId(1)).0, content.topic_base(TopicId(1)).0 + 1];
    let token_docs: Vec<Vec<u32>> = (0..500)
        .map(|i| {
            let topic = TopicId((i % 6) as u16);
            let doc = content.sample_document(topic, &mut stream_rng);
            let mut tokens: Vec<u32> =
                doc.iter().flat_map(|&(t, c)| std::iter::repeat_n(t.0, c as usize)).collect();
            stream_rng.shuffle(&mut tokens);
            if topic.0 == 1 && i % 30 == 1 {
                let mut with_lede = breaking.to_vec();
                with_lede.extend(tokens);
                with_lede
            } else {
                tokens
            }
        })
        .collect();
    let positional = PositionalIndex::build(&token_docs);
    let exact = positional.phrase_search(&breaking);
    println!(
        "\nphrase search over 500 positional articles: the exact lede phrase matches \
{} docs while the bag-of-words AND would match many more ({} KB positional index)",
        exact.len(),
        positional.encoded_bytes() / 1024
    );

    // --- Route incoming queries by language. ---
    let mut lang = LanguageIdentifier::new();
    lang.add_language(
        "en",
        "the latest news about sports politics and weather across the country today",
    );
    lang.add_language(
        "de",
        "die neuesten nachrichten ueber sport politik und wetter im ganzen land heute",
    );
    for q in ["weather today news", "wetter heute nachrichten"] {
        let (best, _) = lang.classify(q).expect("languages registered");
        println!("query '{q}' routed to the {best} index");
    }
}
