//! Capacity planning with the analytical models — the tool the paper's
//! conclusion asks for, pointed at *your* engine.
//!
//! ```sh
//! cargo run --example capacity_planning
//! ```

use distributed_web_retrieval::queueing::capacity::EngineModel;
use distributed_web_retrieval::queueing::cost::CostModel;
use distributed_web_retrieval::queueing::ggc::GgcModel;
use distributed_web_retrieval::queueing::mmc::MMc;

fn main() {
    // 1. Sanity-check a front-end the way Figure 6 does.
    println!("front-end check (G/G/150):");
    for svc_ms in [10.0, 25.0, 50.0] {
        let m = GgcModel::front_end_150(svc_ms / 1000.0);
        println!(
            "  service {svc_ms:>4.0} ms -> max {:>6.0} q/s; at 80% load wait = {:.1} ms",
            m.max_capacity(),
            1000.0 * m.mean_wait(0.8 * m.max_capacity())
        );
    }

    // 2. How many query processors for a target latency?
    println!("\nbackend sizing (M/M/c, 50 ms service, 2,000 q/s):");
    for c in [110u32, 120, 150, 200] {
        let q = MMc::new(2_000.0, 20.0, c);
        if q.is_stable() {
            println!(
                "  c = {c:>3}: utilization {:>4.0}%, P(wait) = {:>4.1}%, response = {:.1} ms",
                100.0 * q.utilization(),
                100.0 * q.prob_wait(),
                1000.0 * q.mean_response_time()
            );
        } else {
            println!("  c = {c:>3}: UNSTABLE (queue grows without bound)");
        }
    }

    // 3. The whole-engine model: your 50M-page vertical engine.
    println!("\nwhole-engine sizing for a 50M-page vertical search engine:");
    let model = EngineModel { pages: 50e6, qps: 300.0, ..EngineModel::default_2007() };
    match model.evaluate() {
        Some(s) => {
            println!("  index: {:.1} GB over {} partitions", s.index_bytes / 1e9, s.partitions);
            println!("  machines: {} ({} replicas)", s.machines, s.replicas);
            println!("  peak response: {:.1} ms", 1000.0 * s.peak_response_time);
            println!(
                "  cost: ${:.2}M capex + ${:.0}k/yr opex",
                s.capex_dollars / 1e6,
                s.opex_dollars_year / 1e3
            );
        }
        None => println!("  no feasible sizing"),
    }

    // 4. And the paper's own 2007 exercise for reference.
    let paper = CostModel::paper_2007().evaluate();
    println!(
        "\n(the paper's 2007 exercise: {:.0} machines/cluster x {:.0} clusters = {:.0} machines, ${:.0}M)",
        paper.machines_per_cluster,
        paper.clusters,
        paper.total_machines,
        paper.hardware_dollars / 1e6
    );
}
